//! The deterministic service driver: a worker pool pushing redis-shaped
//! traffic through the sharded store over the async front-end.
//!
//! Everything a run produces — per-thread traces, per-shard statistics,
//! the final store contents — is a pure function of `(ServerConfig)`
//! under the deterministic scheduler: worker RNGs are seeded from
//! `(seed, worker index)`, workers claim fixed scheduler slots, latencies
//! come off the virtual clock, and the `Reservoir` percentile sampler is
//! itself deterministic. Two runs from the same config are byte-identical;
//! that is what the end-to-end tests and the CI smoke assert.

use std::sync::Barrier;

use htm_sim::{clock, Htm, HtmConfig, SchedulerKind};
use sprwl::{ReaderTracking, SpRwl, SprwlConfig};
use sprwl_locks::{CommitMode, LockThread, Role, RwSync, SectionId, SessionStats};
use sprwl_trace::{EventKind, ThreadTrace, TraceConfig};
use sprwl_workloads::redis::{RedisGen, RedisOp, RedisSpec};

use crate::exec::block_on;
use crate::guards::ShardLock;
use crate::kv::KvShard;
use crate::router::shard_of;

/// Section id for every shard's write sections (one section kind: a
/// KV bump batch).
pub const SEC_KV_WRITE: SectionId = SectionId(40);

/// `lin-*` mark labels (mirrors `sprwl_lincheck::labels`; the server crate
/// records histories without depending on the checker).
const LIN_INV: &str = "lin-inv";
const LIN_READ: &str = "lin-read";
const LIN_WRITE: &str = "lin-write";
const LIN_RET: &str = "lin-ret";

/// Full description of one deterministic service run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shards (one [`SpRwl`] + [`KvShard`] each).
    pub shards: usize,
    /// Worker-pool size (simulated hardware threads; each drives its own
    /// futures).
    pub workers: usize,
    /// Per-worker warmup operations (stats discarded, store effects kept).
    pub warmup_ops: usize,
    /// Per-worker measured operations.
    pub ops_per_worker: usize,
    /// Workload seed: worker `i` draws from `seed ^ ((i + 1) << 24)`.
    pub seed: u64,
    /// Deterministic-scheduler seed.
    pub schedule_seed: u64,
    /// The redis-shaped traffic description.
    pub spec: RedisSpec,
    /// Reader-tracking flavour for every shard lock (`Snzi`, `Bravo`, …).
    pub tracking: ReaderTracking,
    /// Hash buckets per shard.
    pub buckets_per_shard: usize,
    /// Payload scratch cells per shard (0 disables payload pressure).
    pub payload_cells: usize,
    /// Per-thread trace policy. Lin-mark runs need a ring large enough for
    /// every mark of every op ([`ServerConfig::lin_ring`] sizes one).
    pub trace: TraceConfig,
    /// Record `lin-*` operation histories for the linearizability checker.
    pub lin_marks: bool,
}

impl ServerConfig {
    /// A small, fast configuration for tests and CI smokes: 4 shards,
    /// 2 workers, a 512-key uniform 80/15/5 GET/SET/MSET mix.
    pub fn smoke() -> Self {
        let spec = RedisSpec {
            keyspace: 512,
            get_pct: 80,
            set_pct: 15,
            mset_keys: 4,
            ..RedisSpec::service_default()
        };
        Self {
            shards: 4,
            workers: 2,
            warmup_ops: 32,
            ops_per_worker: 256,
            seed: 42,
            schedule_seed: 7,
            spec,
            tracking: ReaderTracking::Snzi,
            buckets_per_shard: 64,
            payload_cells: 64,
            trace: TraceConfig::Off,
            lin_marks: false,
        }
    }

    /// A trace ring large enough for every event of a lin-mark run
    /// (marks + lock lifecycle events, with slack for retries).
    pub fn lin_ring(&self) -> TraceConfig {
        TraceConfig::ring((self.warmup_ops + self.ops_per_worker) * 96 + 512)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("need at least one shard".into());
        }
        if self.workers == 0 {
            return Err("need at least one worker".into());
        }
        if self.buckets_per_shard == 0 {
            return Err("need at least one bucket per shard".into());
        }
        self.spec.validate()
    }

    /// Per-shard key capacity: routing is hashed, so no shard sees more
    /// than a modest multiple of its fair share (capped at the keyspace).
    fn shard_capacity(&self) -> u32 {
        let fair = self.spec.keyspace as usize / self.shards + 1;
        (fair * 2 + 256).min(self.spec.keyspace as usize) as u32
    }

    /// Simulated cells the whole service needs.
    fn cells_needed(&self) -> usize {
        let per_shard = KvShard::cells_needed(
            self.buckets_per_shard,
            self.shard_capacity(),
            self.workers,
            self.payload_cells,
        );
        // Each SpRwl allocates its own control cells (fallback word,
        // reader table, bias word); 64 lines of slack per shard covers
        // every tracking flavour, plus global slack.
        self.shards * (per_shard + 512) + 4096
    }
}

/// Aggregated outcome of one shard across every worker.
#[derive(Debug, Default)]
pub struct ShardTotals {
    /// Commit/abort/latency bookkeeping for every section routed here.
    pub stats: SessionStats,
    /// Committed key increments (SET = 1, MSET = one per distinct key).
    pub increments: u64,
}

/// Everything a deterministic service run produces.
#[derive(Debug)]
pub struct ServerRun {
    /// Per-worker trace snapshots (empty when tracing is off).
    pub traces: Vec<ThreadTrace>,
    /// Per-shard totals, indexed by shard.
    pub shards: Vec<ShardTotals>,
    /// All shards and workers merged (the service-level point).
    pub merged: SessionStats,
    /// Measured virtual seconds (first worker start → last worker end).
    pub elapsed_s: f64,
    /// Final store contents per shard: `(key, value)` sorted by key.
    pub dump: Vec<Vec<(u64, u64)>>,
    /// Post-run invariant sweep: every shard lock quiescent, every
    /// scheduler slot released.
    pub quiescence: Result<(), String>,
    /// Per-worker stats (all shards plus leftovers merged), indexed by
    /// worker. External oracles (the torture harness) consume these.
    pub worker_stats: Vec<SessionStats>,
    /// Per-worker committed increments, indexed `[worker][shard]`
    /// (warmup included — these balance against [`ServerRun::dump`]).
    pub worker_increments: Vec<Vec<u64>>,
    /// The deterministic scheduler's recorded decision trace.
    pub schedule: Vec<htm_sim::DecisionRecord>,
    /// Where a replaying schedule policy stopped matching, if anywhere.
    pub sched_divergence: Option<String>,
}

impl ServerRun {
    /// Conservation oracle: each shard's final counters must sum to
    /// exactly the committed increments routed there.
    ///
    /// # Errors
    ///
    /// Describes the first shard whose totals do not balance.
    pub fn check_conservation(&self) -> Result<(), String> {
        for (s, (dump, totals)) in self.dump.iter().zip(&self.shards).enumerate() {
            let stored: u64 = dump.iter().map(|&(_, v)| v).sum();
            if stored != totals.increments {
                return Err(format!(
                    "shard {s}: store holds {stored} increments but workers committed {}",
                    totals.increments
                ));
            }
        }
        Ok(())
    }
}

/// One shard's lock + store.
struct ShardUnit {
    lock: ShardLock,
    kv: KvShard,
}

/// Runs the service under the deterministic scheduler. See the module
/// docs for the reproducibility contract.
///
/// # Panics
///
/// Panics on an invalid config or if a worker panics.
pub fn run_det(cfg: &ServerConfig) -> ServerRun {
    run_det_with(
        cfg,
        HtmConfig {
            scheduler: SchedulerKind::Deterministic {
                schedule_seed: cfg.schedule_seed,
            },
            ..HtmConfig::default()
        },
    )
}

/// Like [`run_det`], but layered over a caller-supplied simulator
/// configuration — fault model (capacity, conflict policy, interrupt
/// injection, schedule shake) included. The thread count is overridden to
/// the worker-pool size; the scheduler must already be deterministic.
///
/// # Panics
///
/// Panics on an invalid config, a free-running (OS) scheduler, or if a
/// worker panics.
pub fn run_det_with(cfg: &ServerConfig, htm_base: HtmConfig) -> ServerRun {
    cfg.validate().expect("invalid server config");
    assert!(
        !matches!(htm_base.scheduler, SchedulerKind::Os),
        "the service driver is deterministic-only: its wake parking is a \
         scheduler yield point, which the OS scheduler cannot replay"
    );
    let htm = Htm::new(
        HtmConfig {
            max_threads: cfg.workers,
            ..htm_base
        },
        cfg.cells_needed(),
    );
    let lock_cfg = SprwlConfig {
        reader_tracking: cfg.tracking,
        versioned_sgl: true,
        ..SprwlConfig::default()
    };
    let shards: Vec<ShardUnit> = (0..cfg.shards)
        .map(|_| ShardUnit {
            lock: ShardLock::new(SpRwl::new(&htm, lock_cfg.clone())),
            kv: KvShard::new(
                htm.memory(),
                cfg.buckets_per_shard,
                cfg.shard_capacity(),
                cfg.workers,
                cfg.payload_cells,
            ),
        })
        .collect();

    let barrier = Barrier::new(cfg.workers);
    let mut per_shard: Vec<ShardTotals> = (0..cfg.shards).map(|_| ShardTotals::default()).collect();
    let mut merged = SessionStats::default();
    let mut traces = Vec::new();
    let mut worker_stats = Vec::with_capacity(cfg.workers);
    let mut worker_increments = Vec::with_capacity(cfg.workers);
    let mut virt_start = u64::MAX;
    let mut virt_end = 0u64;
    let htm_ref = &htm;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|tid| {
                let barrier = &barrier;
                let shards = &shards;
                scope.spawn(move || worker(cfg, htm_ref, shards, barrier, tid))
            })
            .collect();
        // Joined in spawn order, so per-worker vectors index by tid.
        for h in handles {
            let out = h.join().expect("service worker panicked");
            let mut mine = SessionStats::default();
            for (agg, got) in per_shard.iter_mut().zip(&out.shard_stats) {
                agg.stats.merge(got);
                merged.merge(got);
                mine.merge(got);
            }
            for (agg, &got) in per_shard.iter_mut().zip(&out.increments) {
                agg.increments += got;
            }
            merged.merge(&out.leftover);
            mine.merge(&out.leftover);
            worker_stats.push(mine);
            worker_increments.push(out.increments);
            virt_start = virt_start.min(out.v0);
            virt_end = virt_end.max(out.v1);
            traces.extend(out.trace);
        }
    });

    let mem = htm.memory();
    let mut dump: Vec<Vec<(u64, u64)>> = (0..cfg.shards).map(|_| Vec::new()).collect();
    for key in 0..cfg.spec.keyspace {
        let s = shard_of(key, cfg.shards);
        if let Some(v) = shards[s].kv.peek(mem, key) {
            dump[s].push((key, v));
        }
    }

    let mut quiescence = Ok(());
    for (s, unit) in shards.iter().enumerate() {
        if let Err(e) = unit.lock.lock().check_quiescent(mem) {
            quiescence = Err(format!("shard {s}: {e}"));
            break;
        }
    }
    if quiescence.is_ok() && htm.active_threads() != 0 {
        quiescence = Err(format!(
            "{} scheduler slots still claimed after join",
            htm.active_threads()
        ));
    }

    let schedule = htm.scheduler().decision_trace().unwrap_or_default();
    let sched_divergence = htm.scheduler().schedule_divergence();
    ServerRun {
        traces,
        shards: per_shard,
        merged,
        elapsed_s: ((virt_end.saturating_sub(virt_start)) as f64 / 1e9).max(1e-9),
        dump,
        quiescence,
        worker_stats,
        worker_increments,
        schedule,
        sched_divergence,
    }
}

/// What one worker hands back to the aggregator.
struct WorkerOut {
    shard_stats: Vec<SessionStats>,
    increments: Vec<u64>,
    leftover: SessionStats,
    v0: u64,
    v1: u64,
    trace: Option<ThreadTrace>,
}

fn worker(
    cfg: &ServerConfig,
    htm: &Htm,
    shards: &[ShardUnit],
    barrier: &Barrier,
    tid: usize,
) -> WorkerOut {
    // The barrier runs *before* the scheduler-slot claim: the claims form
    // the deterministic scheduler's first registration wave, which must
    // not interleave with op execution.
    barrier.wait();
    let mut t = LockThread::with_trace(htm.thread(tid), cfg.trace);
    let mut gen = RedisGen::new(cfg.spec.clone(), cfg.seed ^ ((tid as u64 + 1) << 24));
    let mut st = WorkerState {
        shard_stats: (0..cfg.shards).map(|_| SessionStats::default()).collect(),
        increments: vec![0u64; cfg.shards],
        obs: Vec::with_capacity(cfg.spec.mset_keys + 1),
        seq: 0,
        lin: cfg.lin_marks,
    };
    for _ in 0..cfg.warmup_ops {
        service_op(gen.next_op(), cfg.shards, shards, &mut t, &mut st);
    }
    // Measurement starts here: scrap warmup stats, keep warmup *effects*
    // (the increments counter keeps counting — conservation is over the
    // whole run, not the measured window).
    for s in &mut st.shard_stats {
        *s = SessionStats::default();
    }
    t.stats = SessionStats::default();
    let v0 = clock::now();
    for _ in 0..cfg.ops_per_worker {
        service_op(gen.next_op(), cfg.shards, shards, &mut t, &mut st);
    }
    let v1 = clock::now();
    t.fold_trace_counters();
    let trace = cfg.trace.is_on().then(|| t.trace.snapshot());
    WorkerOut {
        shard_stats: st.shard_stats,
        increments: st.increments,
        leftover: t.stats,
        v0,
        v1,
        trace,
    }
}

/// Per-worker mutable op state.
struct WorkerState {
    /// Stats bucketed by the shard each section ran on.
    shard_stats: Vec<SessionStats>,
    /// Committed key increments per shard (warmup included).
    increments: Vec<u64>,
    /// Committed-attempt observation buffer for MSET lin marks.
    obs: Vec<(u64, u64)>,
    /// Per-thread lin-op sequence number.
    seq: u64,
    lin: bool,
}

/// Executes one redis op end-to-end through the async front-end.
fn service_op(
    op: RedisOp,
    n_shards: usize,
    shards: &[ShardUnit],
    t: &mut LockThread<'_>,
    st: &mut WorkerState,
) {
    match op {
        RedisOp::Get { key } => {
            let s = shard_of(key, n_shards);
            if st.lin {
                t.trace.push(EventKind::Mark {
                    label: LIN_INV,
                    a: st.seq,
                    b: 0,
                });
            }
            let start = clock::now();
            let tid = t.tid();
            let guard = block_on(shards[s].lock.read(t.ctx.direct(), tid));
            let mut a = guard.access();
            let val = shards[s]
                .kv
                .get(&mut a, key)
                .expect("direct reads never abort")
                .unwrap_or(0);
            drop(guard);
            let latency = clock::now().saturating_sub(start);
            // The async read path bypasses `read_section`, so it records
            // its own commit: always uninstrumented, per the paper.
            st.shard_stats[s].record_commit(Role::Reader, CommitMode::Unins, latency);
            if st.lin {
                t.trace.push(EventKind::Mark {
                    label: LIN_READ,
                    a: key,
                    b: val,
                });
                t.trace.push(EventKind::Mark {
                    label: LIN_RET,
                    a: st.seq,
                    b: 0,
                });
                st.seq += 1;
            }
        }
        RedisOp::Set { key, payload_bytes } => {
            let s = shard_of(key, n_shards);
            write_batch(s, &[key], payload_bytes, 1, shards, t, st);
        }
        RedisOp::MSet {
            mut keys,
            payload_bytes,
        } => {
            // One write section per shard touched, keys deduped: each
            // sub-batch is an independent lin op (at most one effect per
            // register per op), and no two shard locks are ever held at
            // once, so cross-shard MSETs cannot deadlock.
            keys.sort_unstable();
            keys.dedup();
            let mut by_shard: Vec<Vec<u64>> = vec![Vec::new(); n_shards];
            for key in keys {
                by_shard[shard_of(key, n_shards)].push(key);
            }
            for (s, batch) in by_shard.iter().enumerate() {
                if !batch.is_empty() {
                    write_batch(s, batch, payload_bytes, 2, shards, t, st);
                }
            }
        }
    }
}

/// One write section on shard `s`: bump every key in `batch`, with lin
/// marks describing the committed attempt.
fn write_batch(
    s: usize,
    batch: &[u64],
    payload_bytes: u32,
    kind: u64,
    shards: &[ShardUnit],
    t: &mut LockThread<'_>,
    st: &mut WorkerState,
) {
    if st.lin {
        t.trace.push(EventKind::Mark {
            label: LIN_INV,
            a: st.seq,
            b: kind,
        });
    }
    // Park until a write looks admittable, then run the synchronous
    // section (which re-arbitrates under the lock's own protocol).
    block_on(shards[s].lock.write_ready(t.ctx.direct()));
    let tid = t.tid();
    let kv = &shards[s].kv;
    let obs = &mut st.obs;
    // Route this section's bookkeeping into the shard's stats bucket.
    std::mem::swap(&mut t.stats, &mut st.shard_stats[s]);
    shards[s].lock.write_section(t, SEC_KV_WRITE, &mut |a| {
        // Reset at the top of every attempt so the buffer holds exactly
        // the committed attempt's observations.
        obs.clear();
        for &key in batch {
            let old = kv.bump(a, tid, key, payload_bytes)?;
            obs.push((key, old));
        }
        Ok(batch.len() as u64)
    });
    std::mem::swap(&mut t.stats, &mut st.shard_stats[s]);
    st.increments[s] += batch.len() as u64;
    if st.lin {
        for &(key, old) in st.obs.iter() {
            t.trace.push(EventKind::Mark {
                label: LIN_WRITE,
                a: key,
                b: old,
            });
        }
        t.trace.push(EventKind::Mark {
            label: LIN_RET,
            a: st.seq,
            b: 0,
        });
        st.seq += 1;
    }
}

/// Splits lin-marked traces into per-shard histories: every `lin-inv …
/// lin-ret` block lands in the shard its registers route to (ops never
/// span shards by construction — MSETs are split into per-shard sections
/// before marking). The result feeds `sprwl_lincheck::History::from_traces`
/// one shard at a time, giving a per-shard linearizability verdict.
///
/// # Panics
///
/// Panics when a block carries no effect mark (malformed recording).
pub fn split_lin_traces(traces: &[ThreadTrace], n_shards: usize) -> Vec<Vec<ThreadTrace>> {
    let mut out: Vec<Vec<ThreadTrace>> = (0..n_shards).map(|_| Vec::new()).collect();
    for tr in traces {
        let mut per_shard_events: Vec<Vec<sprwl_trace::Event>> =
            (0..n_shards).map(|_| Vec::new()).collect();
        let mut block: Vec<sprwl_trace::Event> = Vec::new();
        let mut in_block = false;
        for ev in &tr.events {
            let label = match ev.kind {
                EventKind::Mark { label, .. } => label,
                _ => continue,
            };
            match label {
                LIN_INV => {
                    block.clear();
                    block.push(*ev);
                    in_block = true;
                }
                LIN_READ | LIN_WRITE if in_block => block.push(*ev),
                LIN_RET if in_block => {
                    block.push(*ev);
                    let reg = block
                        .iter()
                        .find_map(|e| match e.kind {
                            EventKind::Mark {
                                label: LIN_READ | LIN_WRITE,
                                a,
                                ..
                            } => Some(a),
                            _ => None,
                        })
                        .expect("lin block with no effect mark");
                    per_shard_events[shard_of(reg, n_shards)].append(&mut block);
                    in_block = false;
                }
                // Orphan effect/response marks (ring overwrote the inv):
                // drop them here; the per-shard `dropped` count below tells
                // the checker the history is incomplete anyway.
                _ => {}
            }
        }
        for (s, events) in per_shard_events.into_iter().enumerate() {
            if !events.is_empty() || tr.dropped > 0 {
                out[s].push(ThreadTrace::full(tr.tid, events, tr.dropped));
            }
        }
    }
    out
}
