//! One shard's store: a [`SimHashMap`] plus a payload scratch region.
//!
//! Values are *op counters*: a SET is a fetch-add-1 returning the old
//! value (absent keys read as 0). That gives every write a sequential
//! specification the torture oracle and the linearizability checker can
//! verify — per-key conservation (`final value == committed SETs`) and
//! register-bank lincheck semantics — while the *payload* side of a real
//! SET survives as extra cell writes into the scratch region: the write
//! section's HTM footprint grows with the drawn payload size, exactly the
//! capacity pressure a byte-payload store would see.

use htm_sim::{MemAccess, Region, SimMemory, TxResult};
use sprwl_workloads::SimHashMap;

/// Per-shard KV state in simulated memory.
#[derive(Debug)]
pub struct KvShard {
    map: SimHashMap,
    payload: Region,
    payload_cells: usize,
}

impl KvShard {
    /// Builds one shard: `n_buckets` chains, room for `capacity` distinct
    /// keys, `payload_cells` cells of payload scratch (0 disables payload
    /// pressure), shared by `n_threads` threads.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes (other than `payload_cells`) or when the
    /// simulated memory is exhausted.
    pub fn new(
        mem: &SimMemory,
        n_buckets: usize,
        capacity: u32,
        n_threads: usize,
        payload_cells: usize,
    ) -> Self {
        let map = SimHashMap::new(mem, n_buckets, capacity, n_threads);
        let payload = mem.alloc_line_aligned(payload_cells.max(1));
        for c in payload.iter() {
            mem.init_store(c, 0);
        }
        Self {
            map,
            payload,
            payload_cells,
        }
    }

    /// Simulated cells one shard needs (for sizing the arena up front).
    pub fn cells_needed(
        n_buckets: usize,
        capacity: u32,
        n_threads: usize,
        payload_cells: usize,
    ) -> usize {
        SimHashMap::cells_needed(n_buckets, capacity, n_threads) + payload_cells.max(1) + 8
    }

    /// GET: the key's current counter, `None` when never set.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts (infallible under a read guard's
    /// direct access).
    pub fn get(&self, a: &mut dyn MemAccess, key: u64) -> TxResult<Option<u64>> {
        self.map.lookup(a, key)
    }

    /// SET: fetch-add-1 on the key's counter, returning the old value
    /// (0 when the key was absent), then `payload_bytes` worth of scratch
    /// writes at a key-derived offset so the transaction's write footprint
    /// tracks the payload-size distribution.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts (the whole SET retries).
    pub fn bump(
        &self,
        a: &mut dyn MemAccess,
        tid: usize,
        key: u64,
        payload_bytes: u32,
    ) -> TxResult<u64> {
        let old = self.map.lookup(a, key)?.unwrap_or(0);
        self.map.insert(a, tid, key, old + 1)?;
        if self.payload_cells > 0 {
            let cells = (payload_bytes as usize).div_ceil(8).min(self.payload_cells);
            let base = key as usize % self.payload_cells;
            for i in 0..cells {
                let idx = (base + i) % self.payload_cells;
                a.write(self.payload.cell(idx), key ^ u64::from(payload_bytes))?;
            }
        }
        Ok(old)
    }

    /// Post-run, non-transactional read of a key's final counter (store
    /// dumps after every worker joined).
    pub fn peek(&self, mem: &SimMemory, key: u64) -> Option<u64> {
        self.map.lookup_peek(mem, key)
    }
}
