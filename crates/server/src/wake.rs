//! A wake-list: where pending `read()`/`write()` futures park their wakers
//! instead of spinning on the lock word.
//!
//! One list per shard. Writers notify it after every completed write
//! section (the only event that can unblock a parked acquirer). The
//! critical sections below touch no simulated memory, so holding the
//! `std` mutex never waits on a deterministic-scheduler turn — a parked
//! OS thread can always be unblocked by the holder finishing its push.

use std::sync::Mutex;
use std::task::Waker;

/// A set of wakers waiting for a shard's admission state to change.
#[derive(Debug, Default)]
pub struct WakeList {
    wakers: Mutex<Vec<Waker>>,
}

impl WakeList {
    /// An empty wake-list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks `waker` until the next [`WakeList::notify_all`].
    ///
    /// Callers must re-check their admission condition *after* registering
    /// (the state may have changed between the failed attempt and the
    /// registration); spurious wakes are therefore harmless.
    pub fn register(&self, waker: &Waker) {
        self.wakers
            .lock()
            .expect("wake-list poisoned")
            .push(waker.clone());
    }

    /// Wakes every parked future. Called after each completed write
    /// section; also safe to call with nobody parked.
    pub fn notify_all(&self) {
        let drained = std::mem::take(&mut *self.wakers.lock().expect("wake-list poisoned"));
        // Wake outside the lock so a waker that polls inline cannot
        // re-enter the list while we hold it.
        for w in drained {
            w.wake();
        }
    }

    /// Number of currently parked wakers (tests and introspection).
    pub fn parked(&self) -> usize {
        self.wakers.lock().expect("wake-list poisoned").len()
    }
}
