//! Key → shard routing.
//!
//! Fibonacci hashing (multiply by 2⁶⁴/φ, keep the high bits) spreads the
//! dense, low-entropy ids the redis-shaped generator draws across shards
//! far better than `key % n` would — adjacent keys land on different
//! shards, so a zipfian hot range does not collapse onto one lock.

/// Routes a key id to a shard in `0..n_shards`.
///
/// Pure and total: the same `(key, n_shards)` always maps to the same
/// shard, which is what lets an oracle recompute every op's shard from a
/// trace after the fact.
///
/// # Panics
///
/// Panics when `n_shards` is zero.
#[inline]
pub fn shard_of(key: u64, n_shards: usize) -> usize {
    assert!(n_shards > 0, "need at least one shard");
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
    // h < 2^32, so h * n >> 32 is an exact range reduction to 0..n.
    ((h * n_shards as u64) >> 32) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_range_and_is_stable() {
        for n in 1..9 {
            for key in 0..10_000u64 {
                let s = shard_of(key, n);
                assert!(s < n);
                assert_eq!(s, shard_of(key, n), "routing must be pure");
            }
        }
    }

    #[test]
    fn dense_ids_spread_across_shards() {
        let n = 8;
        let mut counts = vec![0u64; n];
        for key in 0..8_000u64 {
            counts[shard_of(key, n)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1_300).contains(&c),
                "shard {s} got {c}/8000 dense keys — router is lumpy"
            );
        }
    }
}
