//! # sprwl-server — a sharded async KV service over SpRWL
//!
//! The paper pitches SpRWL at reader-dominated *services*; this crate is
//! that scenario made concrete and testable:
//!
//! * [`router`] — hashed key → shard routing (one [`sprwl::SpRwl`] per
//!   shard, any reader-tracking flavour including BRAVO bias).
//! * [`kv`] — per-shard store: a [`sprwl_workloads::SimHashMap`] of op
//!   counters plus a payload scratch region so write footprints track the
//!   redis payload-size distribution.
//! * [`guards`] + [`wake`] + [`exec`] — the async front-end: future-based
//!   `read()`/`write()` acquisition that parks waiters on a per-shard
//!   wake-list instead of spinning, driven by a minimal in-crate
//!   `block_on` (no tokio; consistent with the offline-shims approach).
//!   Futures are cancel-safe: dropping one mid-acquire leaks no reader
//!   slot, bias state, or anti-starvation ticket.
//! * [`service`] — the deterministic driver: a worker pool pushing
//!   [`sprwl_workloads::redis`] traffic through the shards, with
//!   per-shard statistics, `lin-*` histories for the linearizability
//!   checker, a conservation oracle over the final store contents, and
//!   byte-identical reruns under the deterministic scheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod exec;
pub mod guards;
pub mod kv;
pub mod router;
pub mod service;
pub mod wake;

pub use exec::block_on;
pub use guards::{ReadFuture, ReadGuard, ShardLock, WriteFuture};
pub use kv::KvShard;
pub use router::shard_of;
pub use service::{run_det, run_det_with, split_lin_traces, ServerConfig, ServerRun, ShardTotals};
pub use wake::WakeList;
