//! End-to-end service runs: conservation, quiescence, per-shard
//! statistics, and per-shard linearizability verdicts from recorded
//! `lin-*` histories.

use sprwl::ReaderTracking;
use sprwl_lincheck::{check, CheckConfig, History, Verdict};
use sprwl_server::{run_det, split_lin_traces, ServerConfig};

#[test]
fn smoke_run_conserves_and_quiesces() {
    for tracking in [ReaderTracking::Snzi, ReaderTracking::Bravo] {
        let cfg = ServerConfig {
            tracking,
            ..ServerConfig::smoke()
        };
        let run = run_det(&cfg);
        run.quiescence.as_ref().expect("all shards quiescent");
        run.check_conservation()
            .expect("store conserves increments");
        assert!(run.merged.total_commits() > 0, "{tracking:?}: no commits");
        assert_eq!(run.shards.len(), cfg.shards);
        // Reads are uninstrumented; every shard that saw traffic reports
        // its own breakdown and the per-shard stats sum to the merged ones.
        let shard_commits: u64 = run.shards.iter().map(|s| s.stats.total_commits()).sum();
        assert_eq!(shard_commits, run.merged.total_commits());
        assert!(
            run.shards
                .iter()
                .filter(|s| s.stats.total_commits() > 0)
                .count()
                >= 2,
            "{tracking:?}: traffic collapsed onto fewer than 2 shards"
        );
    }
}

#[test]
fn per_shard_histories_are_linearizable() {
    let mut cfg = ServerConfig {
        lin_marks: true,
        ops_per_worker: 120,
        warmup_ops: 8,
        ..ServerConfig::smoke()
    };
    cfg.trace = cfg.lin_ring();
    let run = run_det(&cfg);
    run.quiescence.as_ref().expect("quiescent");
    run.check_conservation().expect("conserves");

    let per_shard = split_lin_traces(&run.traces, cfg.shards);
    assert_eq!(per_shard.len(), cfg.shards);
    let mut checked = 0usize;
    for (s, traces) in per_shard.iter().enumerate() {
        if traces.is_empty() {
            continue;
        }
        let hist = History::from_traces(traces).expect("well-formed mark stream");
        if hist.total_ops() == 0 {
            continue;
        }
        match check(&hist, &CheckConfig::default()) {
            Verdict::Linearizable => checked += 1,
            v => panic!("shard {s}: history not linearizable: {v:?}"),
        }
    }
    assert!(
        checked >= 2,
        "only {checked} shards produced checkable histories"
    );
}

#[test]
fn extra_worker_changes_interleaving_but_conserves() {
    let base = ServerConfig::smoke();
    let bigger = ServerConfig {
        workers: base.workers + 1,
        ..base.clone()
    };
    let a = run_det(&base);
    let b = run_det(&bigger);
    a.check_conservation().expect("base run conserves");
    b.check_conservation().expect("bigger run conserves");
    b.quiescence.as_ref().expect("bigger run quiescent");
    // One extra worker means strictly more committed increments overall
    // (every worker commits all its ops; nothing is load-balanced away).
    let incr = |r: &sprwl_server::ServerRun| r.shards.iter().map(|s| s.increments).sum::<u64>();
    assert!(incr(&b) > incr(&a), "extra worker added no increments");
}
