//! Cancellation-safety of the async guards: dropping a `read()`/`write()`
//! future at any point of its acquisition protocol — never polled, parked
//! mid-acquire (anti-starvation ticket published), or resolved with the
//! guard unused — must leak no reader slot, no bias state, and no
//! registration that would fail the lock's quiescence sweep.

use std::future::Future;
use std::pin::pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use htm_sim::{Htm, HtmConfig};
use sprwl::{ReaderTracking, SpRwl, SprwlConfig};
use sprwl_locks::RwSync;
use sprwl_server::ShardLock;

struct NoopWake;
impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

fn poll_once<F: Future>(fut: &mut std::pin::Pin<&mut F>) -> Poll<F::Output> {
    let waker = Waker::from(Arc::new(NoopWake));
    let mut cx = Context::from_waker(&waker);
    fut.as_mut().poll(&mut cx)
}

fn htm() -> Htm {
    Htm::new(
        HtmConfig {
            max_threads: 4,
            ..HtmConfig::default()
        },
        8192,
    )
}

fn versioned(tracking: ReaderTracking) -> SprwlConfig {
    SprwlConfig {
        reader_tracking: tracking,
        versioned_sgl: true,
        ..SprwlConfig::default()
    }
}

#[test]
fn dropping_an_unpolled_read_future_leaves_no_state() {
    let htm = htm();
    let shard = ShardLock::new(SpRwl::new(&htm, versioned(ReaderTracking::Snzi)));
    let d = htm.direct(0);
    drop(shard.read(d, 0));
    shard
        .lock()
        .check_quiescent(htm.memory())
        .expect("unpolled future must leave the lock untouched");
}

#[test]
fn dropping_a_parked_read_future_clears_the_published_ticket() {
    let htm = htm();
    let shard = ShardLock::new(SpRwl::new(&htm, versioned(ReaderTracking::Snzi)));
    let writer = htm.direct(1);
    shard.lock().debug_fallback_acquire(&writer);

    let d = htm.direct(0);
    {
        let mut fut = pin!(shard.read(d, 0));
        assert!(
            poll_once(&mut fut).is_pending(),
            "a fallback holder must defer the reader"
        );
        // The pending poll published the §3.3 anti-starvation ticket and
        // parked the waker — this is the "after slot publish" drop point.
        assert!(shard.lock().read_admission_pending(0));
        assert_eq!(shard.wake().parked(), 1);
    }
    // Future dropped: the ticket must be gone even though the fallback
    // writer is still in flight.
    assert!(!shard.lock().read_admission_pending(0));

    shard.lock().debug_fallback_release(&writer);
    shard
        .lock()
        .check_quiescent(htm.memory())
        .expect("cancelled acquire must not wedge quiescence");
}

#[test]
fn dropping_a_resolved_but_unused_guard_releases_the_slot() {
    let htm = htm();
    let shard = ShardLock::new(SpRwl::new(&htm, versioned(ReaderTracking::Snzi)));
    let d = htm.direct(0);
    {
        let mut fut = pin!(shard.read(d, 0));
        let Poll::Ready(guard) = poll_once(&mut fut) else {
            panic!("idle lock must admit immediately");
        };
        drop(guard);
    }
    shard
        .lock()
        .check_quiescent(htm.memory())
        .expect("guard drop must withdraw the announcement");
}

#[test]
fn cancelled_reader_does_not_stall_the_fallback_writer_drain() {
    // The invariant behind cancel-safety: a future that returned Pending is
    // NOT announced, so a fallback writer draining readers never waits on a
    // cancelled acquirer.
    let htm = htm();
    let shard = ShardLock::new(SpRwl::new(&htm, versioned(ReaderTracking::Snzi)));
    let writer = htm.direct(1);
    shard.lock().debug_fallback_acquire(&writer);
    {
        let mut fut = pin!(shard.read(htm.direct(0), 0));
        assert!(poll_once(&mut fut).is_pending());
        assert!(
            !shard.lock().debug_any_reader_active(&writer, 1),
            "a pending future must not look like an active reader"
        );
    }
    shard.lock().debug_fallback_release(&writer);
    shard.lock().check_quiescent(htm.memory()).expect("clean");
}

#[test]
fn bravo_bias_survives_cancelled_and_completed_async_readers() {
    let htm = htm();
    let shard = ShardLock::new(SpRwl::new(&htm, versioned(ReaderTracking::Bravo)));
    let mem = htm.memory();
    let d = htm.direct(0);

    // Completed round trips first: arm the bias word via the fast path.
    for _ in 0..4 {
        let mut fut = pin!(shard.read(d, 0));
        let Poll::Ready(guard) = poll_once(&mut fut) else {
            panic!("idle BRAVO lock must admit");
        };
        drop(guard);
    }

    // Now cancel a parked acquire under a fallback writer.
    let writer = htm.direct(1);
    shard.lock().debug_fallback_acquire(&writer);
    {
        let mut fut = pin!(shard.read(d, 0));
        assert!(poll_once(&mut fut).is_pending());
    }
    shard.lock().debug_fallback_release(&writer);

    // Neither the visible table nor the bias word may be stuck.
    shard
        .lock()
        .check_quiescent(mem)
        .expect("bias word and visible table must be balanced after cancellation");

    // And the lock still works: one more full round trip.
    let mut fut = pin!(shard.read(d, 0));
    let Poll::Ready(guard) = poll_once(&mut fut) else {
        panic!("BRAVO lock must still admit after a cancelled acquire");
    };
    drop(guard);
    shard.lock().check_quiescent(mem).expect("clean");
}

#[test]
fn dropping_a_parked_write_future_leaves_no_state() {
    let htm = htm();
    let shard = ShardLock::new(SpRwl::new(&htm, versioned(ReaderTracking::Snzi)));
    let holder = htm.direct(1);
    shard.lock().debug_fallback_acquire(&holder);
    {
        let mut fut = pin!(shard.write_ready(htm.direct(0)));
        assert!(
            poll_once(&mut fut).is_pending(),
            "a held fallback must defer the writer probe"
        );
        assert_eq!(shard.wake().parked(), 1);
    }
    shard.lock().debug_fallback_release(&holder);
    shard
        .lock()
        .check_quiescent(htm.memory())
        .expect("the write probe registers nothing to leak");
}

#[test]
fn notify_unparks_and_admission_resumes() {
    // End-to-end wake path: a parked read future resolves after the writer
    // releases and notifies, from a dynamically acquired (churn) slot —
    // the worker-pool grow/shrink shape.
    let htm = htm();
    let shard = ShardLock::new(SpRwl::new(&htm, versioned(ReaderTracking::Snzi)));
    let ctx = htm.acquire_thread();
    let tid = ctx.tid();
    let writer = htm.direct(3);
    shard.lock().debug_fallback_acquire(&writer);

    let mut fut = pin!(shard.read(ctx.direct(), tid));
    assert!(poll_once(&mut fut).is_pending());
    // First failed attempt registered the versioned ticket; the release
    // advances nothing yet, so a second poll still pends.
    assert!(poll_once(&mut fut).is_pending());

    shard.lock().debug_fallback_release(&writer);
    shard.wake().notify_all();
    let Poll::Ready(guard) = poll_once(&mut fut) else {
        panic!("released fallback must admit the parked reader");
    };
    drop(guard);
    drop(ctx);
    shard.lock().check_quiescent(htm.memory()).expect("clean");
    assert_eq!(htm.active_threads(), 0, "churn slot must be released");
}
