//! Schema-versioned benchmark results (`BENCH_<category>_<date>.json`)
//! and the regression comparison behind the `bench-compare` binary.
//!
//! The layout follows the continuous-benchmark pipelines of
//! strata-benchmarks-style repos: every run emits one self-describing JSON
//! document carrying the schema version, provenance (git commit, date,
//! hardware, capacity profile, run mode), the workload parameters, and one
//! point per (workload, lock, threads) with throughput, abort rate, the
//! commit-mode breakdown and reservoir-sampled latency percentiles.
//! `bench-compare` diffs two such documents point-by-point against
//! per-metric thresholds.
//!
//! The build environment is offline (no serde), so serialization is
//! hand-rolled: [`BenchResults::to_json`] emits and a minimal recursive-
//! descent parser ([`BenchResults::from_json`]) reads it back. Floats are
//! formatted with Rust's shortest-round-trip formatting, so serialize →
//! parse → serialize is byte-stable and `serialize → parse` compares equal
//! under [`PartialEq`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sprwl_locks::{AbortCause, CommitMode, LatencyRecorder, SessionStats};

/// The schema version this module reads and writes. Bump on any change to
/// the JSON layout; `bench-compare` refuses to diff mismatched versions.
pub const SCHEMA_VERSION: u64 = 1;

/// The schema *minor* version: bumped for purely additive growth (new
/// optional fields, new categories) that old documents simply lack.
/// Minor 1 added the `schema_minor` field itself, the `server` category,
/// and the optional per-point `shards` breakdown. Documents without the
/// field read as minor 0; documents with a *larger* minor than this
/// build's are refused (they may carry fields we would silently drop),
/// but `bench-compare` never gates on the minor — old baselines stay
/// comparable.
pub const SCHEMA_MINOR: u64 = 1;

/// Per-shard breakdown of one server-category point: integer commit and
/// abort tallies for the sections routed to one shard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardStat {
    /// Shard index.
    pub shard: u64,
    /// Committed sections routed here (reads and writes).
    pub commits: u64,
    /// Aborted speculative attempts routed here.
    pub aborts: u64,
    /// Commits per mode, in [`CommitMode::ALL`] order (HTM/ROT/GL/Unins).
    pub commit_mode: [u64; 4],
}

/// Latency digest of one role (reader or writer) at one point, ns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean_ns: u64,
    /// Reservoir-sampled p50 (nearest rank over a uniform subsample).
    pub p50_ns: u64,
    /// Reservoir-sampled p95.
    pub p95_ns: u64,
    /// Reservoir-sampled p99.
    pub p99_ns: u64,
    /// Observed maximum.
    pub max_ns: u64,
    /// Number of sections recorded (not the retained reservoir size).
    pub samples: u64,
}

impl LatencySummary {
    /// Digests a harness latency recorder.
    pub fn from_recorder(rec: &LatencyRecorder) -> Self {
        Self {
            mean_ns: rec.mean_ns(),
            p50_ns: rec.sampled_percentile_ns(50.0),
            p95_ns: rec.sampled_percentile_ns(95.0),
            p99_ns: rec.sampled_percentile_ns(99.0),
            max_ns: rec.max_ns,
            samples: rec.count,
        }
    }
}

/// One measured benchmark point.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Workload name (e.g. `read-only`, `hot-key`).
    pub workload: String,
    /// Lock scheme label (e.g. `SpRWL`, `TLE`).
    pub lock: String,
    /// Worker threads.
    pub threads: u64,
    /// Committed critical sections per second — per *virtual* second in
    /// deterministic mode, making the number host-independent.
    pub throughput: f64,
    /// Measured-window length in seconds: virtual seconds in deterministic
    /// mode (wall-clock-free), wall seconds otherwise.
    pub elapsed_s: f64,
    /// Total committed critical sections in the measured window.
    pub commits: u64,
    /// Abort rate, percent of speculative attempts.
    pub abort_pct: f64,
    /// Percent of commits per mode, in [`CommitMode::ALL`] order
    /// (HTM/ROT/GL/Unins).
    pub commit_mode_pct: [f64; 4],
    /// Abort counts per cause, in [`AbortCause::ALL`] order.
    pub aborts: [u64; 7],
    /// Reader-latency digest.
    pub reader: LatencySummary,
    /// Writer-latency digest.
    pub writer: LatencySummary,
    /// Per-shard breakdown (server category only; empty elsewhere and
    /// omitted from the JSON when empty — a schema-minor-1 addition).
    pub shards: Vec<ShardStat>,
}

impl BenchPoint {
    /// Builds a point from merged harness statistics.
    pub fn from_stats(
        workload: &str,
        lock: &str,
        threads: usize,
        stats: &SessionStats,
        elapsed_s: f64,
    ) -> Self {
        let total = stats.total_commits().max(1) as f64;
        let mode_pct = CommitMode::ALL.map(|m| 100.0 * stats.commits_in(m) as f64 / total);
        Self {
            workload: workload.to_string(),
            lock: lock.to_string(),
            threads: threads as u64,
            throughput: stats.total_commits() as f64 / elapsed_s.max(1e-9),
            elapsed_s,
            commits: stats.total_commits(),
            abort_pct: 100.0 * stats.abort_ratio(),
            commit_mode_pct: mode_pct,
            aborts: AbortCause::ALL.map(|c| stats.aborts_of(c)),
            reader: LatencySummary::from_recorder(&stats.reader_latency),
            writer: LatencySummary::from_recorder(&stats.writer_latency),
            shards: Vec::new(),
        }
    }

    /// The identity a point is paired under when diffing two result files.
    pub fn key(&self) -> String {
        format!("{}/{}/t{}", self.workload, self.lock, self.threads)
    }

    /// One human-readable table row.
    pub fn row(&self) -> String {
        format!(
            "{:<18} {:<9} {:>3}  {:>12.0}  {:>6.1}%  {:>4.0}% {:>4.0}% {:>4.0}% {:>4.0}%  rd {:>6}/{:>6}/{:>6}us  wr {:>6}/{:>6}/{:>6}us",
            self.workload,
            self.lock,
            self.threads,
            self.throughput,
            self.abort_pct,
            self.commit_mode_pct[0],
            self.commit_mode_pct[1],
            self.commit_mode_pct[2],
            self.commit_mode_pct[3],
            self.reader.p50_ns / 1_000,
            self.reader.p95_ns / 1_000,
            self.reader.p99_ns / 1_000,
            self.writer.p50_ns / 1_000,
            self.writer.p95_ns / 1_000,
            self.writer.p99_ns / 1_000,
        )
    }

    /// Header matching [`BenchPoint::row`].
    pub fn header() -> String {
        format!(
            "{:<18} {:<9} {:>3}  {:>12}  {:>7}  {:>5} {:>5} {:>5} {:>5}  {:<24}  {:<24}",
            "workload",
            "lock",
            "thr",
            "tx/s",
            "abort%",
            "HTM%",
            "ROT%",
            "GL%",
            "Unin%",
            "rd p50/p95/p99",
            "wr p50/p95/p99"
        )
    }
}

/// Host provenance recorded alongside the numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Hardware {
    /// `available_parallelism` of the measuring host.
    pub host_threads: u64,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
}

impl Hardware {
    /// Probes the current host.
    pub fn probe() -> Self {
        Self {
            host_threads: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }
}

/// One `BENCH_<category>_<date>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResults {
    /// Always [`SCHEMA_VERSION`] for documents this module writes.
    pub schema_version: u64,
    /// Always [`SCHEMA_MINOR`] for documents this module writes; 0 for
    /// documents predating the field.
    pub schema_minor: u64,
    /// Result category — the `<category>` of the file name.
    pub category: String,
    /// Capture date, `YYYY-MM-DD`.
    pub date: String,
    /// Git commit the numbers were measured at (`unknown` outside a repo).
    pub git_commit: String,
    /// `det` (virtual clock, fixed work) or `wall` (timed window).
    pub mode: String,
    /// Simulated capacity profile name (e.g. `broadwell-sim`).
    pub capacity_profile: String,
    /// Measuring host.
    pub hardware: Hardware,
    /// Free-form workload parameters (seed, ops per thread, warmup, …).
    pub params: BTreeMap<String, String>,
    /// The measured points.
    pub points: Vec<BenchPoint>,
}

impl BenchResults {
    /// The canonical file name for this document.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}_{}.json", self.category, self.date)
    }

    /// Serializes to pretty-printed JSON (stable field order).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096 + self.points.len() * 512);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(s, "  \"schema_minor\": {},", self.schema_minor);
        let _ = writeln!(s, "  \"category\": {},", json_string(&self.category));
        let _ = writeln!(s, "  \"date\": {},", json_string(&self.date));
        let _ = writeln!(s, "  \"git_commit\": {},", json_string(&self.git_commit));
        let _ = writeln!(s, "  \"mode\": {},", json_string(&self.mode));
        let _ = writeln!(
            s,
            "  \"capacity_profile\": {},",
            json_string(&self.capacity_profile)
        );
        let _ = writeln!(
            s,
            "  \"hardware\": {{\"host_threads\": {}, \"os\": {}, \"arch\": {}}},",
            self.hardware.host_threads,
            json_string(&self.hardware.os),
            json_string(&self.hardware.arch)
        );
        s.push_str("  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}: {}", json_string(k), json_string(v));
        }
        s.push_str("},\n");
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str("    {");
            let _ = write!(
                s,
                "\"workload\": {}, \"lock\": {}, \"threads\": {}, ",
                json_string(&p.workload),
                json_string(&p.lock),
                p.threads
            );
            let _ = write!(
                s,
                "\"throughput\": {}, \"elapsed_s\": {}, \"commits\": {}, \"abort_pct\": {},",
                json_f64(p.throughput),
                json_f64(p.elapsed_s),
                p.commits,
                json_f64(p.abort_pct)
            );
            s.push_str("\n     \"commit_mode_pct\": {");
            for (j, m) in CommitMode::ALL.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(
                    s,
                    "\"{}\": {}",
                    m.label().to_ascii_lowercase(),
                    json_f64(p.commit_mode_pct[j])
                );
            }
            s.push_str("},\n     \"aborts\": {");
            for (j, c) in AbortCause::ALL.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\": {}", c.label(), p.aborts[j]);
            }
            s.push_str("},\n");
            for (role, l) in [("reader", &p.reader), ("writer", &p.writer)] {
                let _ = write!(
                    s,
                    "     \"{role}_latency_ns\": {{\"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"samples\": {}}}",
                    l.mean_ns, l.p50_ns, l.p95_ns, l.p99_ns, l.max_ns, l.samples
                );
                if role == "reader" {
                    s.push_str(",\n");
                }
            }
            if !p.shards.is_empty() {
                s.push_str(",\n     \"shards\": [");
                for (j, sh) in p.shards.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(
                        s,
                        "{{\"shard\": {}, \"commits\": {}, \"aborts\": {}, \"commit_mode\": {{",
                        sh.shard, sh.commits, sh.aborts
                    );
                    for (k, m) in CommitMode::ALL.iter().enumerate() {
                        if k > 0 {
                            s.push_str(", ");
                        }
                        let _ = write!(
                            s,
                            "\"{}\": {}",
                            m.label().to_ascii_lowercase(),
                            sh.commit_mode[k]
                        );
                    }
                    s.push_str("}}");
                }
                s.push(']');
            }
            s.push('}');
            if i + 1 < self.points.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a document produced by [`BenchResults::to_json`] (or any
    /// JSON matching the schema).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        let obj = v.as_obj("document")?;
        let schema_version = obj.u64_field("schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (this tool reads {SCHEMA_VERSION})"
            ));
        }
        // Minor versions are additive: older documents (field absent ⇒ 0)
        // read fine, but a *newer* minor may carry fields this build would
        // silently drop, so refuse it.
        let schema_minor = match obj.get("schema_minor") {
            Some(_) => obj.u64_field("schema_minor")?,
            None => 0,
        };
        if schema_minor > SCHEMA_MINOR {
            return Err(format!(
                "unsupported schema_minor {schema_minor} (this tool reads up to {SCHEMA_MINOR}; \
                 upgrade to read this document)"
            ));
        }
        let hardware_v = obj.field("hardware")?;
        let hw = hardware_v.as_obj("hardware")?;
        let params_v = obj.field("params")?;
        let mut params = BTreeMap::new();
        for (k, v) in &params_v.as_obj("params")?.0 {
            params.insert(k.clone(), v.as_str("params value")?.to_string());
        }
        let mut points = Vec::new();
        for (i, pv) in obj.field("points")?.as_arr("points")?.iter().enumerate() {
            points.push(Self::point_from_json(pv).map_err(|e| format!("points[{i}]: {e}"))?);
        }
        Ok(Self {
            schema_version,
            schema_minor,
            category: obj.str_field("category")?,
            date: obj.str_field("date")?,
            git_commit: obj.str_field("git_commit")?,
            mode: obj.str_field("mode")?,
            capacity_profile: obj.str_field("capacity_profile")?,
            hardware: Hardware {
                host_threads: hw.u64_field("host_threads")?,
                os: hw.str_field("os")?,
                arch: hw.str_field("arch")?,
            },
            params,
            points,
        })
    }

    fn point_from_json(v: &Json) -> Result<BenchPoint, String> {
        let obj = v.as_obj("point")?;
        let modes = obj.field("commit_mode_pct")?;
        let modes = modes.as_obj("commit_mode_pct")?;
        let mut commit_mode_pct = [0.0; 4];
        for (j, m) in CommitMode::ALL.iter().enumerate() {
            commit_mode_pct[j] = modes.f64_field(&m.label().to_ascii_lowercase())?;
        }
        let aborts_v = obj.field("aborts")?;
        let aborts_o = aborts_v.as_obj("aborts")?;
        let mut aborts = [0u64; 7];
        for (j, c) in AbortCause::ALL.iter().enumerate() {
            aborts[j] = aborts_o.u64_field(c.label())?;
        }
        let latency = |role: &str| -> Result<LatencySummary, String> {
            let lv = obj.field(&format!("{role}_latency_ns"))?;
            let lo = lv.as_obj("latency")?;
            Ok(LatencySummary {
                mean_ns: lo.u64_field("mean")?,
                p50_ns: lo.u64_field("p50")?,
                p95_ns: lo.u64_field("p95")?,
                p99_ns: lo.u64_field("p99")?,
                max_ns: lo.u64_field("max")?,
                samples: lo.u64_field("samples")?,
            })
        };
        let mut shards = Vec::new();
        if let Some(sv) = obj.get("shards") {
            for shv in sv.as_arr("shards")?.iter() {
                let sho = shv.as_obj("shard stat")?;
                let cm = sho.field("commit_mode")?;
                let cm = cm.as_obj("commit_mode")?;
                let mut commit_mode = [0u64; 4];
                for (k, m) in CommitMode::ALL.iter().enumerate() {
                    commit_mode[k] = cm.u64_field(&m.label().to_ascii_lowercase())?;
                }
                shards.push(ShardStat {
                    shard: sho.u64_field("shard")?,
                    commits: sho.u64_field("commits")?,
                    aborts: sho.u64_field("aborts")?,
                    commit_mode,
                });
            }
        }
        Ok(BenchPoint {
            workload: obj.str_field("workload")?,
            lock: obj.str_field("lock")?,
            threads: obj.u64_field("threads")?,
            throughput: obj.f64_field("throughput")?,
            elapsed_s: obj.f64_field("elapsed_s")?,
            commits: obj.u64_field("commits")?,
            abort_pct: obj.f64_field("abort_pct")?,
            commit_mode_pct,
            aborts,
            reader: latency("reader")?,
            writer: latency("writer")?,
            shards,
        })
    }
}

/// Escapes and quotes a JSON string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` with shortest-round-trip precision (always with a
/// decimal point or exponent, so it reads back as a float).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        // JSON has no Inf/NaN; degrade to 0 rather than emit garbage.
        "0.0".to_string()
    }
}

/// A parsed JSON value (minimal recursive-descent parser; the offline
/// build has no serde).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (u64 fields must fit in 2^53, which bench counts do).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(JsonObj),
}

/// Key-value pairs of a JSON object, in document order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JsonObj(pub Vec<(String, Json)>);

impl JsonObj {
    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn field(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn str_field(&self, key: &str) -> Result<String, String> {
        Ok(self.field(key)?.as_str(key)?.to_string())
    }

    fn f64_field(&self, key: &str) -> Result<f64, String> {
        self.field(key)?.as_f64(key)
    }

    fn u64_field(&self, key: &str) -> Result<u64, String> {
        let v = self.field(key)?.as_f64(key)?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("field {key:?} is not a non-negative integer: {v}"));
        }
        Ok(v as u64)
    }
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn as_obj(&self, what: &str) -> Result<&JsonObj, String> {
        match self {
            Json::Obj(o) => Ok(o),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut obj = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(JsonObj(obj)));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                obj.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(JsonObj(obj)));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for this schema's
                        // ASCII field names; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Per-metric regression thresholds for [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Maximum tolerated relative throughput drop (e.g. `0.10` = −10 %).
    pub throughput_drop: f64,
    /// Maximum tolerated abort-rate rise, in percentage points.
    pub abort_rise_pp: f64,
    /// Maximum tolerated relative p99 latency rise (e.g. `0.50` = +50 %).
    pub p99_rise: f64,
    /// p99 rises below this absolute floor (ns) are never flagged — keeps
    /// near-zero baselines from tripping on scheduling noise.
    pub p99_floor_ns: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            throughput_drop: 0.10,
            abort_rise_pp: 5.0,
            p99_rise: 0.50,
            p99_floor_ns: 2_000,
        }
    }
}

/// One metric of one point that crossed its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The point key ([`BenchPoint::key`]).
    pub key: String,
    /// Metric name (`throughput`, `abort_pct`, `reader_p99`, `writer_p99`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Signed relative change, percent (positive = increase).
    pub delta_pct: f64,
}

impl Regression {
    /// Human-readable one-liner.
    pub fn describe(&self) -> String {
        format!(
            "REGRESSION {:<32} {:<12} {:>14.1} -> {:>14.1}  ({:+.1}%)",
            self.key, self.metric, self.baseline, self.candidate, self.delta_pct
        )
    }
}

/// Outcome of diffing two result documents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompareReport {
    /// Points present in both documents (paired by [`BenchPoint::key`]).
    pub matched: usize,
    /// Threshold violations, in document order.
    pub regressions: Vec<Regression>,
    /// Throughput improvements beyond the same threshold (informational).
    pub improvements: usize,
    /// Keys of baseline points absent from the candidate.
    pub missing_in_candidate: Vec<String>,
    /// Keys of candidate points absent from the baseline.
    pub new_in_candidate: Vec<String>,
}

/// Diffs `candidate` against `baseline` with the given thresholds.
///
/// # Errors
///
/// Fails when the documents carry different schema versions, modes, or
/// capacity profiles — numbers measured under different rules must not be
/// silently compared.
pub fn compare(
    baseline: &BenchResults,
    candidate: &BenchResults,
    th: &Thresholds,
) -> Result<CompareReport, String> {
    if baseline.schema_version != candidate.schema_version {
        return Err(format!(
            "schema mismatch: baseline v{} vs candidate v{}",
            baseline.schema_version, candidate.schema_version
        ));
    }
    if baseline.mode != candidate.mode {
        return Err(format!(
            "mode mismatch: baseline {:?} vs candidate {:?} (det and wall numbers are not comparable)",
            baseline.mode, candidate.mode
        ));
    }
    if baseline.capacity_profile != candidate.capacity_profile {
        return Err(format!(
            "capacity profile mismatch: {:?} vs {:?}",
            baseline.capacity_profile, candidate.capacity_profile
        ));
    }
    let mut report = CompareReport::default();
    let rel = |base: f64, cand: f64| {
        if base.abs() < 1e-12 {
            0.0
        } else {
            100.0 * (cand - base) / base
        }
    };
    for bp in &baseline.points {
        let Some(cp) = candidate.points.iter().find(|c| c.key() == bp.key()) else {
            report.missing_in_candidate.push(bp.key());
            continue;
        };
        report.matched += 1;
        if cp.throughput < bp.throughput * (1.0 - th.throughput_drop) {
            report.regressions.push(Regression {
                key: bp.key(),
                metric: "throughput".into(),
                baseline: bp.throughput,
                candidate: cp.throughput,
                delta_pct: rel(bp.throughput, cp.throughput),
            });
        } else if cp.throughput > bp.throughput * (1.0 + th.throughput_drop) {
            report.improvements += 1;
        }
        if cp.abort_pct > bp.abort_pct + th.abort_rise_pp {
            report.regressions.push(Regression {
                key: bp.key(),
                metric: "abort_pct".into(),
                baseline: bp.abort_pct,
                candidate: cp.abort_pct,
                delta_pct: cp.abort_pct - bp.abort_pct,
            });
        }
        for (metric, b, c) in [
            ("reader_p99", &bp.reader, &cp.reader),
            ("writer_p99", &bp.writer, &cp.writer),
        ] {
            if b.samples == 0 || c.samples == 0 {
                continue;
            }
            let risen = c.p99_ns as f64 > b.p99_ns as f64 * (1.0 + th.p99_rise);
            let above_floor = c.p99_ns > b.p99_ns + th.p99_floor_ns;
            if risen && above_floor {
                report.regressions.push(Regression {
                    key: bp.key(),
                    metric: metric.into(),
                    baseline: b.p99_ns as f64,
                    candidate: c.p99_ns as f64,
                    delta_pct: rel(b.p99_ns as f64, c.p99_ns as f64),
                });
            }
        }
    }
    for cp in &candidate.points {
        if !baseline.points.iter().any(|b| b.key() == cp.key()) {
            report.new_in_candidate.push(cp.key());
        }
    }
    Ok(report)
}

/// `YYYY-MM-DD` for a Unix timestamp (days-to-civil per Howard Hinnant's
/// `civil_from_days`), for naming `BENCH_*` files without a date crate.
pub fn civil_date(unix_secs: u64) -> String {
    let z = (unix_secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Today's date (`YYYY-MM-DD`) from the system clock.
pub fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    civil_date(secs)
}

/// The current git commit (short hash): `BENCH_GIT_COMMIT` env override,
/// else `git rev-parse --short HEAD`, else `"unknown"`.
pub fn git_commit() -> String {
    if let Ok(c) = std::env::var("BENCH_GIT_COMMIT") {
        if !c.is_empty() {
            return c;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_results() -> BenchResults {
        let mut params = BTreeMap::new();
        params.insert("seed".to_string(), "42".to_string());
        params.insert("ops_per_thread".to_string(), "1500".to_string());
        BenchResults {
            schema_version: SCHEMA_VERSION,
            schema_minor: SCHEMA_MINOR,
            category: "sweep".into(),
            date: "2026-08-09".into(),
            git_commit: "abc1234".into(),
            mode: "det".into(),
            capacity_profile: "broadwell-sim".into(),
            hardware: Hardware {
                host_threads: 8,
                os: "linux".into(),
                arch: "x86_64".into(),
            },
            params,
            points: vec![
                BenchPoint {
                    workload: "read-only".into(),
                    lock: "SpRWL".into(),
                    threads: 4,
                    throughput: 123_456.789,
                    elapsed_s: 0.0485,
                    commits: 6_000,
                    abort_pct: 1.25,
                    commit_mode_pct: [10.0, 0.0, 5.0, 85.0],
                    aborts: [1, 2, 3, 4, 5, 6, 7],
                    reader: LatencySummary {
                        mean_ns: 900,
                        p50_ns: 800,
                        p95_ns: 2_000,
                        p99_ns: 3_000,
                        max_ns: 9_999,
                        samples: 5_400,
                    },
                    writer: LatencySummary::default(),
                    shards: Vec::new(),
                },
                BenchPoint {
                    workload: "hot-key".into(),
                    lock: "TLE".into(),
                    threads: 2,
                    throughput: 55_000.0,
                    elapsed_s: 0.1,
                    commits: 5_500,
                    abort_pct: 20.5,
                    commit_mode_pct: [60.0, 0.0, 40.0, 0.0],
                    aborts: [100, 0, 20, 0, 0, 0, 1],
                    reader: LatencySummary {
                        mean_ns: 1_500,
                        p50_ns: 1_200,
                        p95_ns: 4_000,
                        p99_ns: 8_000,
                        max_ns: 20_000,
                        samples: 4_000,
                    },
                    writer: LatencySummary {
                        mean_ns: 2_500,
                        p50_ns: 2_000,
                        p95_ns: 6_000,
                        p99_ns: 11_000,
                        max_ns: 40_000,
                        samples: 1_500,
                    },
                    shards: vec![
                        ShardStat {
                            shard: 0,
                            commits: 3_000,
                            aborts: 80,
                            commit_mode: [1_800, 0, 1_200, 0],
                        },
                        ShardStat {
                            shard: 1,
                            commits: 2_500,
                            aborts: 41,
                            commit_mode: [1_500, 0, 1_000, 0],
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample_results();
        let json = r.to_json();
        let back = BenchResults::from_json(&json).expect("parses");
        assert_eq!(r, back);
        // And serialize → parse → serialize is byte-stable.
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn file_name_follows_the_convention() {
        assert_eq!(sample_results().file_name(), "BENCH_sweep_2026-08-09.json");
    }

    #[test]
    fn parser_accepts_foreign_formatting() {
        // Whitespace, reordered keys, exponents and escapes — what an
        // external tool (python json.dump) might emit.
        let r = sample_results();
        let mut doc = r.to_json();
        doc = doc.replace("\"seed\": \"42\"", "\"seed\":\t\"42\"");
        doc = doc.replace("123456.789", "1.23456789e5");
        let back = BenchResults::from_json(&doc).expect("parses");
        assert_eq!(back.points[0].throughput, 123_456.789);
        assert!(BenchResults::from_json("{nope").is_err());
        assert!(BenchResults::from_json("[]").is_err());
        let wrong_version = doc.replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = BenchResults::from_json(&wrong_version).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn newer_schema_minor_is_refused_and_absent_minor_reads_as_zero() {
        let doc = sample_results().to_json();
        // A document from a *future* build carries fields we would silently
        // drop — refuse it.
        let future = doc.replace(
            &format!("\"schema_minor\": {SCHEMA_MINOR}"),
            "\"schema_minor\": 99",
        );
        let err = BenchResults::from_json(&future).unwrap_err();
        assert!(err.contains("schema_minor"), "{err}");

        // A pre-minor document (field absent) is minor 0 and parses fine —
        // old committed baselines stay readable and comparable.
        let legacy = doc.replace(&format!("  \"schema_minor\": {SCHEMA_MINOR},\n"), "");
        let back = BenchResults::from_json(&legacy).expect("legacy doc parses");
        assert_eq!(back.schema_minor, 0);
        // compare() never gates on the minor: additive fields can't change
        // the meaning of shared metrics.
        let rep = compare(&back, &sample_results(), &Thresholds::default()).unwrap();
        assert!(rep.regressions.is_empty());
    }

    #[test]
    fn per_shard_stats_round_trip_and_are_optional() {
        let r = sample_results();
        let json = r.to_json();
        // Point 0 has no shard stats: the key must be absent entirely so
        // pre-minor readers of server-free documents see no new keys.
        assert_eq!(json.matches("\"shards\"").count(), 1);
        let back = BenchResults::from_json(&json).expect("parses");
        assert_eq!(back.points[0].shards, Vec::new());
        assert_eq!(back.points[1].shards.len(), 2);
        assert_eq!(back.points[1].shards[1].commits, 2_500);
        assert_eq!(back.points[1].shards[0].commit_mode, [1_800, 0, 1_200, 0]);
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        let v = Json::parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\nA".to_string()));
    }

    #[test]
    fn self_compare_is_clean() {
        let r = sample_results();
        let rep = compare(&r, &r, &Thresholds::default()).unwrap();
        assert_eq!(rep.matched, 2);
        assert!(rep.regressions.is_empty());
        assert!(rep.missing_in_candidate.is_empty());
        assert!(rep.new_in_candidate.is_empty());
    }

    #[test]
    fn injected_throughput_regression_is_flagged_and_noise_is_not() {
        let base = sample_results();
        let mut bad = base.clone();
        bad.points[0].throughput *= 0.5;
        let rep = compare(&base, &bad, &Thresholds::default()).unwrap();
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].metric, "throughput");
        assert!(rep.regressions[0].delta_pct < -40.0);

        let mut noisy = base.clone();
        noisy.points[0].throughput *= 0.98; // within the default 10 %
        noisy.points[1].abort_pct += 2.0; // within the default 5 pp
        let rep = compare(&base, &noisy, &Thresholds::default()).unwrap();
        assert!(rep.regressions.is_empty(), "{:?}", rep.regressions);
    }

    #[test]
    fn abort_and_p99_regressions_are_flagged() {
        let base = sample_results();
        let mut bad = base.clone();
        bad.points[1].abort_pct += 10.0;
        bad.points[1].writer.p99_ns *= 3;
        let rep = compare(&base, &bad, &Thresholds::default()).unwrap();
        let metrics: Vec<&str> = rep.regressions.iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"abort_pct"), "{metrics:?}");
        assert!(metrics.contains(&"writer_p99"), "{metrics:?}");
        // Tiny absolute p99 wobbles under the floor never trip.
        let mut wobble = base.clone();
        wobble.points[0].reader.p99_ns += 1_500; // 50 %+, but under floor+base
        let th = Thresholds {
            p99_floor_ns: 2_000,
            ..Thresholds::default()
        };
        let rep = compare(&base, &wobble, &th).unwrap();
        assert!(rep.regressions.is_empty(), "{:?}", rep.regressions);
    }

    #[test]
    fn incompatible_documents_refuse_to_compare() {
        let base = sample_results();
        let mut wall = base.clone();
        wall.mode = "wall".into();
        assert!(compare(&base, &wall, &Thresholds::default())
            .unwrap_err()
            .contains("mode mismatch"));
        let mut other_profile = base.clone();
        other_profile.capacity_profile = "power8-sim".into();
        assert!(compare(&base, &other_profile, &Thresholds::default()).is_err());
        let mut v2 = base.clone();
        v2.schema_version = 2;
        assert!(compare(&base, &v2, &Thresholds::default()).is_err());
    }

    #[test]
    fn missing_and_new_points_are_reported() {
        let base = sample_results();
        let mut cand = base.clone();
        let dropped = cand.points.remove(1);
        let rep = compare(&base, &cand, &Thresholds::default()).unwrap();
        assert_eq!(rep.matched, 1);
        assert_eq!(rep.missing_in_candidate, vec![dropped.key()]);
        let rep = compare(&cand, &base, &Thresholds::default()).unwrap();
        assert_eq!(rep.new_in_candidate, vec![dropped.key()]);
    }

    #[test]
    fn civil_date_matches_known_days() {
        assert_eq!(civil_date(0), "1970-01-01");
        assert_eq!(civil_date(86_400), "1970-01-02");
        // 2026-08-09 00:00:00 UTC.
        assert_eq!(civil_date(1_786_233_600), "2026-08-09");
        // Leap day.
        assert_eq!(civil_date(1_709_164_800), "2024-02-29");
    }

    #[test]
    fn point_row_and_key_are_stable() {
        let p = &sample_results().points[0];
        assert_eq!(p.key(), "read-only/SpRWL/t4");
        assert!(p.row().contains("read-only"));
        assert!(BenchPoint::header().contains("abort%"));
    }
}
