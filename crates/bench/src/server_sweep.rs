//! Server-category sweep: the sharded async KV service of `sprwl-server`
//! driven over a (key distribution × shard count × tracking × worker
//! count) grid on the deterministic scheduler.
//!
//! Unlike the lock-level grids in [`crate::sweep`], every point here is a
//! whole *service* run — hashed routing, per-shard [`sprwl::SpRwl`]s,
//! future-based acquisition, redis-shaped traffic — so the emitted
//! `BENCH_server_<date>.json` additionally carries the per-point
//! [`ShardStat`] breakdown (commits / aborts / commit-mode per shard).
//! Server sweeps are deterministic-only: the service parks futures on
//! wake-lists and measures on the virtual clock, so the same flags produce
//! a bit-identical document on any host, which is what `bench-compare`
//! diffs in CI.

use sprwl::ReaderTracking;
use sprwl_locks::CommitMode;
use sprwl_server::{run_det, ServerConfig, ServerRun};
use sprwl_trace::TraceConfig;
use sprwl_workloads::redis::{KeyDist, RedisSpec};

use crate::results::{BenchPoint, BenchResults, Hardware, ShardStat, SCHEMA_MINOR, SCHEMA_VERSION};

/// Grid description for one server sweep.
#[derive(Debug, Clone)]
pub struct ServerSweepConfig {
    /// Shard counts to sweep (the `#sN` suffix of each workload name).
    pub shard_counts: Vec<usize>,
    /// Worker-pool sizes to sweep (the point's `threads` axis).
    pub workers: Vec<usize>,
    /// Reader-tracking flavours (the point's `lock` axis).
    pub trackings: Vec<ReaderTracking>,
    /// Key-popularity distributions, as `(label, dist)` pairs.
    pub key_dists: Vec<(String, KeyDist)>,
    /// Distinct keys per run (kept small so det runs stay fast; the
    /// generator itself is exercised at service scale in its own tests).
    pub keyspace: u64,
    /// Workload seed (worker `i` draws from `seed ^ ((i + 1) << 24)`).
    pub seed: u64,
    /// Deterministic-scheduler seed.
    pub schedule_seed: u64,
    /// Per-worker warmup operations (stats discarded).
    pub warmup_ops: usize,
    /// Per-worker measured operations.
    pub ops_per_worker: usize,
    /// Results-document category (file name `BENCH_<category>_<date>.json`).
    pub category: String,
}

impl Default for ServerSweepConfig {
    fn default() -> Self {
        Self {
            shard_counts: vec![2, 4],
            workers: vec![2, 4],
            trackings: vec![ReaderTracking::Snzi, ReaderTracking::Bravo],
            key_dists: vec![
                ("uniform".to_string(), KeyDist::Uniform),
                ("zipf".to_string(), KeyDist::Zipfian { theta: 0.99 }),
            ],
            keyspace: 2048,
            seed: 42,
            schedule_seed: 7,
            warmup_ops: 32,
            ops_per_worker: 300,
            category: "server".to_string(),
        }
    }
}

/// The lock label a tracking flavour is reported under, matching the
/// names `bench-sweep --locks` already accepts for the lock-level grids.
pub fn tracking_label(t: ReaderTracking) -> &'static str {
    match t {
        ReaderTracking::Flags => "SpRWL",
        ReaderTracking::Snzi => "SNZI",
        ReaderTracking::Adaptive => "SpRWL-adaptive",
        ReaderTracking::Bravo => "BRAVO",
    }
}

/// Digests one finished service run into a results point, per-shard
/// breakdown attached.
pub fn server_point(workload: &str, lock: &str, run: &ServerRun, workers: usize) -> BenchPoint {
    let mut point = BenchPoint::from_stats(workload, lock, workers, &run.merged, run.elapsed_s);
    point.shards = run
        .shards
        .iter()
        .enumerate()
        .map(|(i, s)| ShardStat {
            shard: i as u64,
            commits: s.stats.total_commits(),
            aborts: s.stats.total_aborts(),
            commit_mode: CommitMode::ALL.map(|m| s.stats.commits_in(m)),
        })
        .collect();
    point
}

/// Runs the full grid and assembles the results document.
///
/// # Panics
///
/// Panics when a run fails its own post-run invariants (quiescence or
/// store/increment conservation) — a det service run violating either is
/// a harness bug and must not produce a silently-wrong document.
pub fn run_server_sweep(cfg: &ServerSweepConfig, date: &str, git_commit: &str) -> BenchResults {
    let mut points = Vec::new();
    for (dist_label, dist) in &cfg.key_dists {
        for &shards in &cfg.shard_counts {
            for tracking in &cfg.trackings {
                for &workers in &cfg.workers {
                    let server = ServerConfig {
                        shards,
                        workers,
                        warmup_ops: cfg.warmup_ops,
                        ops_per_worker: cfg.ops_per_worker,
                        seed: cfg.seed,
                        schedule_seed: cfg.schedule_seed,
                        spec: RedisSpec {
                            keyspace: cfg.keyspace,
                            key_dist: *dist,
                            ..RedisSpec::service_default()
                        },
                        tracking: *tracking,
                        trace: TraceConfig::Off,
                        lin_marks: false,
                        ..ServerConfig::smoke()
                    };
                    let run = run_det(&server);
                    run.quiescence
                        .as_ref()
                        .unwrap_or_else(|e| panic!("server point not quiescent: {e}"));
                    run.check_conservation()
                        .unwrap_or_else(|e| panic!("server point broke conservation: {e}"));
                    points.push(server_point(
                        &format!("redis-{dist_label}#s{shards}"),
                        tracking_label(*tracking),
                        &run,
                        workers,
                    ));
                }
            }
        }
    }

    let mut params = std::collections::BTreeMap::new();
    params.insert("seed".to_string(), cfg.seed.to_string());
    params.insert("schedule_seed".to_string(), cfg.schedule_seed.to_string());
    params.insert("ops_per_worker".to_string(), cfg.ops_per_worker.to_string());
    params.insert("warmup_ops".to_string(), cfg.warmup_ops.to_string());
    params.insert("keyspace".to_string(), cfg.keyspace.to_string());

    BenchResults {
        schema_version: SCHEMA_VERSION,
        schema_minor: SCHEMA_MINOR,
        category: cfg.category.clone(),
        date: date.to_string(),
        git_commit: git_commit.to_string(),
        mode: "det".to_string(),
        capacity_profile: "service".to_string(),
        hardware: Hardware::probe(),
        params,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServerSweepConfig {
        ServerSweepConfig {
            shard_counts: vec![2, 4],
            workers: vec![2],
            trackings: vec![ReaderTracking::Snzi, ReaderTracking::Bravo],
            key_dists: vec![("uniform".to_string(), KeyDist::Uniform)],
            keyspace: 512,
            ops_per_worker: 96,
            warmup_ops: 8,
            ..ServerSweepConfig::default()
        }
    }

    #[test]
    fn grid_covers_shards_and_trackings_with_shard_breakdowns() {
        let r = run_server_sweep(&tiny(), "2026-08-09", "test");
        assert_eq!(r.points.len(), 4);
        assert_eq!(r.category, "server");
        for p in &r.points {
            let shards: usize = p.workload.rsplit("#s").next().unwrap().parse().unwrap();
            assert_eq!(p.shards.len(), shards);
            assert!(p.commits > 0);
            // The shard tallies decompose the merged point exactly.
            let total: u64 = p.shards.iter().map(|s| s.commits).sum();
            assert_eq!(total, p.commits);
        }
        assert!(r.points.iter().any(|p| p.lock == "SNZI"));
        assert!(r.points.iter().any(|p| p.lock == "BRAVO"));
    }

    #[test]
    fn document_is_deterministic_and_round_trips() {
        let cfg = tiny();
        let a = run_server_sweep(&cfg, "2026-08-09", "test");
        let b = run_server_sweep(&cfg, "2026-08-09", "test");
        assert_eq!(a, b, "det server sweep must be bit-reproducible");
        let json = a.to_json();
        let back = BenchResults::from_json(&json).expect("parses");
        assert_eq!(a, back);
        assert_eq!(json, back.to_json());
        assert_eq!(back.file_name(), "BENCH_server_2026-08-09.json");
    }
}
