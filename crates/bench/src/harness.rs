//! The benchmark driver: spawns threads, runs timed workload loops over a
//! chosen [`RwSync`] scheme, and aggregates the paper's metrics
//! (throughput, abort breakdown, commit-mode breakdown, per-role latency).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use htm_sim::{clock, CapacityProfile, Htm, HtmConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprwl::{SpRwl, SprwlConfig};
use sprwl_locks::{
    AbortCause, BrLock, CommitMode, LockThread, McsRwLock, PassiveRwLock, PhaseFairRwLock,
    PthreadRwLock, RwLe, RwSync, SectionId, SessionStats, Tle,
};
use sprwl_trace::{ThreadTrace, TraceConfig};
use sprwl_workloads::spec::{hashmap_read_cs, hashmap_write_cs, TpccTxKind};
use sprwl_workloads::tpcc::{self, TpccDb, TpccScale};
use sprwl_workloads::{HashmapSpec, Mix, SimHashMap};

/// Section ids used by the harness workloads.
pub const SEC_HASH_READ: SectionId = SectionId(0);
/// Hashmap write critical sections.
pub const SEC_HASH_WRITE: SectionId = SectionId(1);
/// TPC-C sections are 2 + transaction-kind index.
pub const SEC_TPCC_BASE: u32 = 2;

/// Which synchronization scheme to benchmark.
#[derive(Debug, Clone)]
pub enum LockKind {
    /// SpRWL with the given configuration.
    Sprwl(SprwlConfig),
    /// Plain transactional lock elision.
    Tle,
    /// Hardware read-write lock elision (POWER8 profiles only).
    RwLe,
    /// pthread-style read-write lock.
    Rwl,
    /// Big-reader lock.
    BrLock,
    /// Big-reader lock with the BRAVO visible-readers bias layer — the
    /// pessimistic counterpart of `Sprwl(with_bravo())`.
    BrLockBias,
    /// Phase-fair ticket read-write lock.
    PhaseFair,
    /// Queue-based MCS-style read-write lock.
    Mcs,
    /// Passive (version-consensus) read-write lock.
    Passive,
}

impl LockKind {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            LockKind::Sprwl(cfg) => match (cfg.scheduling, cfg.reader_tracking) {
                (s, sprwl::ReaderTracking::Flags) => s.label().to_string(),
                (sprwl::Scheduling::Full, sprwl::ReaderTracking::Snzi) => "SNZI".to_string(),
                (s, sprwl::ReaderTracking::Snzi) => format!("{}+SNZI", s.label()),
                (sprwl::Scheduling::Full, sprwl::ReaderTracking::Adaptive) => {
                    "Adaptive".to_string()
                }
                (s, sprwl::ReaderTracking::Adaptive) => format!("{}+Adaptive", s.label()),
                (sprwl::Scheduling::Full, sprwl::ReaderTracking::Bravo) => "BRAVO".to_string(),
                (s, sprwl::ReaderTracking::Bravo) => format!("{}+BRAVO", s.label()),
            },
            LockKind::Tle => "TLE".into(),
            LockKind::RwLe => "RW-LE".into(),
            LockKind::Rwl => "RWL".into(),
            LockKind::BrLock => "BRLock".into(),
            LockKind::BrLockBias => "BRLock+bias".into(),
            LockKind::PhaseFair => "PF-RWL".into(),
            LockKind::Mcs => "MCS-RWL".into(),
            LockKind::Passive => "PRWL".into(),
        }
    }

    /// Whether the scheme can run on the given capacity profile (RW-LE is
    /// POWER8-only, exactly as in the paper).
    pub fn supports(&self, profile: &CapacityProfile) -> bool {
        match self {
            LockKind::RwLe => profile.supports_rot(),
            _ => true,
        }
    }

    /// Whether the scheme can run under
    /// [`htm_sim::SchedulerKind::Deterministic`]. [`LockKind::Rwl`] cannot:
    /// it parks waiters on a real OS condvar the serialized scheduler
    /// cannot see, which deadlocks the schedule token (the torture
    /// harness's det matrix excludes it for the same reason). Every other
    /// scheme spins through scheduler-visible yield points.
    pub fn det_compatible(&self) -> bool {
        !matches!(self, LockKind::Rwl)
    }

    /// Instantiates the scheme over a runtime.
    pub fn build(&self, htm: &Htm) -> Box<dyn RwSync> {
        match self {
            LockKind::Sprwl(cfg) => Box::new(SpRwl::new(htm, cfg.clone())),
            LockKind::Tle => Box::new(Tle::new(htm)),
            LockKind::RwLe => Box::new(RwLe::new(htm)),
            LockKind::Rwl => Box::new(PthreadRwLock::new()),
            LockKind::BrLock => Box::new(BrLock::new(htm.max_threads())),
            LockKind::BrLockBias => Box::new(BrLock::with_bias(
                htm.max_threads(),
                sprwl_locks::BiasPolicy::default(),
            )),
            LockKind::PhaseFair => Box::new(PhaseFairRwLock::new()),
            LockKind::Mcs => Box::new(McsRwLock::new(htm.max_threads())),
            LockKind::Passive => Box::new(PassiveRwLock::new(htm.max_threads())),
        }
    }

    /// The set of schemes the paper compares on a profile (Fig. 3/4/7).
    pub fn paper_set(profile: &CapacityProfile) -> Vec<LockKind> {
        let mut v = vec![
            LockKind::Tle,
            LockKind::Rwl,
            LockKind::BrLock,
            LockKind::Sprwl(SprwlConfig::default()),
        ];
        if profile.supports_rot() {
            v.insert(1, LockKind::RwLe);
        }
        v
    }
}

/// One benchmark point's parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads.
    pub threads: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// RNG seed (per-thread seeds derive from it).
    pub seed: u64,
}

impl RunConfig {
    /// Duration from the `SPRWL_BENCH_SECS` environment variable (default
    /// 0.25 s per point — benchmarks sweep many points).
    pub fn bench_duration() -> Duration {
        let secs = std::env::var("SPRWL_BENCH_SECS")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.25);
        Duration::from_secs_f64(secs)
    }

    /// Thread sweep from `SPRWL_BENCH_THREADS` (default `1,2,4,8`).
    pub fn bench_threads() -> Vec<usize> {
        std::env::var("SPRWL_BENCH_THREADS")
            .ok()
            .map(|s| {
                s.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .collect::<Vec<_>>()
            })
            .filter(|v: &Vec<usize>| !v.is_empty())
            .unwrap_or_else(|| vec![1, 2, 4, 8])
    }
}

/// Aggregated result of one benchmark point.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheme name.
    pub lock: String,
    /// Worker threads.
    pub threads: usize,
    /// Committed critical sections per second.
    pub throughput: f64,
    /// Merged per-thread statistics.
    pub stats: SessionStats,
    /// Actual measured wall-clock seconds.
    pub elapsed_s: f64,
    /// Virtual seconds covered by the measured window when the run
    /// executed under a deterministic scheduler (`None` for free-running
    /// runs). Deterministic throughput is computed against this, making it
    /// reproducible run-to-run and host-independent.
    pub virtual_elapsed_s: Option<f64>,
}

impl RunReport {
    /// Percentage of commits in `mode`.
    pub fn commit_pct(&self, mode: CommitMode) -> f64 {
        let total = self.stats.total_commits().max(1);
        100.0 * self.stats.commits_in(mode) as f64 / total as f64
    }

    /// Abort rate: aborts / (aborts + commits), percent.
    pub fn abort_pct(&self) -> f64 {
        100.0 * self.stats.abort_ratio()
    }

    /// `p50/p95/p99` of a latency recorder, in microseconds, as a compact
    /// slash-joined cell for the human-readable table.
    fn pctls_us(rec: &sprwl_locks::LatencyRecorder) -> String {
        format!(
            "{:.0}/{:.0}/{:.0}",
            rec.percentile_ns(50.0) as f64 / 1_000.0,
            rec.percentile_ns(95.0) as f64 / 1_000.0,
            rec.percentile_ns(99.0) as f64 / 1_000.0,
        )
    }

    /// Header for the human-readable table.
    pub fn header() -> String {
        format!(
            "{:<9} {:>3}  {:>12}  {:>7}  {:>5} {:>5} {:>5} {:>5}  {:>9} {:>14}  {:>9} {:>14}  {}",
            "lock",
            "thr",
            "tx/s",
            "abort%",
            "HTM%",
            "ROT%",
            "GL%",
            "Unin%",
            "rdlat(us)",
            "rd50/95/99",
            "wrlat(us)",
            "wr50/95/99",
            "aborts: conf/cap/expl/rdr/confR/capR/intr"
        )
    }

    /// One row of the human-readable table.
    pub fn row(&self) -> String {
        let a = |c: AbortCause| self.stats.aborts_of(c);
        format!(
            "{:<9} {:>3}  {:>12.0}  {:>6.1}%  {:>4.0}% {:>4.0}% {:>4.0}% {:>4.0}%  {:>9.1} {:>14}  {:>9.1} {:>14}  {}/{}/{}/{}/{}/{}/{}",
            self.lock,
            self.threads,
            self.throughput,
            self.abort_pct(),
            self.commit_pct(CommitMode::Htm),
            self.commit_pct(CommitMode::Rot),
            self.commit_pct(CommitMode::Gl),
            self.commit_pct(CommitMode::Unins),
            self.stats.reader_latency.mean_ns() as f64 / 1_000.0,
            Self::pctls_us(&self.stats.reader_latency),
            self.stats.writer_latency.mean_ns() as f64 / 1_000.0,
            Self::pctls_us(&self.stats.writer_latency),
            a(AbortCause::Conflict),
            a(AbortCause::Capacity),
            a(AbortCause::Explicit),
            a(AbortCause::Reader),
            a(AbortCause::ConflictRot),
            a(AbortCause::CapacityRot),
            a(AbortCause::Interrupt),
        )
    }

    /// Machine-readable CSV row (`fig,label,...` prefixed by the caller).
    /// Columns: lock, threads, throughput, abort%, HTM%, ROT%, GL%, Unins%,
    /// rd\_mean\_ns, wr\_mean\_ns, rd\_p50, rd\_p95, rd\_p99, wr\_p50,
    /// wr\_p95, wr\_p99.
    pub fn csv(&self) -> String {
        let rd = &self.stats.reader_latency;
        let wr = &self.stats.writer_latency;
        format!(
            "{},{},{:.0},{:.2},{:.1},{:.1},{:.1},{:.1},{},{},{},{},{},{},{},{}",
            self.lock,
            self.threads,
            self.throughput,
            self.abort_pct(),
            self.commit_pct(CommitMode::Htm),
            self.commit_pct(CommitMode::Rot),
            self.commit_pct(CommitMode::Gl),
            self.commit_pct(CommitMode::Unins),
            rd.mean_ns(),
            wr.mean_ns(),
            rd.percentile_ns(50.0),
            rd.percentile_ns(95.0),
            rd.percentile_ns(99.0),
            wr.percentile_ns(50.0),
            wr.percentile_ns(95.0),
            wr.percentile_ns(99.0),
        )
    }

    /// Human-readable digest of the top-`k` conflict-attributed lines, or
    /// `None` when the run recorded no attributed aborts.
    pub fn conflict_summary(&self, k: usize) -> Option<String> {
        if self.stats.conflict_lines.is_empty() {
            return None;
        }
        let total = self.stats.conflict_lines.total();
        let cells = self
            .stats
            .conflict_lines
            .top_k(k)
            .iter()
            .map(|c| format!("line {} x{} (peer t{})", c.line, c.count, c.last_peer))
            .collect::<Vec<_>>()
            .join(", ");
        Some(format!("{total} attributed conflict aborts: {cells}"))
    }
}

/// Builds an [`Htm`] runtime sized for a benchmark point.
pub fn htm_for(profile: CapacityProfile, threads: usize, cells: usize) -> Htm {
    Htm::new(
        HtmConfig {
            capacity: profile,
            max_threads: threads,
            ..HtmConfig::default()
        },
        cells,
    )
}

/// Runs the hashmap micro-benchmark (§4.1) for one point.
pub fn run_hashmap(
    htm: &Htm,
    lock: &dyn RwSync,
    map: &SimHashMap,
    spec: &HashmapSpec,
    rc: &RunConfig,
) -> RunReport {
    run_hashmap_traced(htm, lock, map, spec, rc, TraceConfig::Off).0
}

/// [`run_hashmap`] with per-thread event tracing (see
/// [`run_generic_traced`]).
pub fn run_hashmap_traced(
    htm: &Htm,
    lock: &dyn RwSync,
    map: &SimHashMap,
    spec: &HashmapSpec,
    rc: &RunConfig,
    trace: TraceConfig,
) -> (RunReport, Vec<ThreadTrace>) {
    let (rep, traces) = run_generic_traced(htm, rc, trace, |ctx: &mut WorkerCtx<'_, '_>| {
        let WorkerCtx { t, rng, scratch } = ctx;
        if rng.gen_range(0..100u32) < spec.update_pct {
            let key = rng.gen_range(0..spec.key_space);
            let insert = rng.gen_bool(0.5);
            let tid = t.tid();
            lock.write_section(t, SEC_HASH_WRITE, &mut |a| {
                hashmap_write_cs(map, a, tid, key, insert)
            });
        } else {
            scratch.clear();
            scratch.extend((0..spec.lookups_per_read).map(|_| rng.gen_range(0..spec.key_space)));
            lock.read_section(t, SEC_HASH_READ, &mut |a| hashmap_read_cs(map, a, scratch));
        }
    });
    (rep.with_lock_name(lock.name()), traces)
}

/// Scans the process arguments for `--trace <path>` (the figure benches'
/// opt-in for Chrome-trace capture). Criterion-style `--trace=<path>` also
/// works.
pub fn trace_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(std::path::PathBuf::from(p));
        }
    }
    None
}

/// Runs the TPC-C benchmark (§4.2) for one point with the given mix.
pub fn run_tpcc(htm: &Htm, lock: &dyn RwSync, db: &TpccDb, mix: &Mix, rc: &RunConfig) -> RunReport {
    let scale = *db.scale();
    run_generic(htm, rc, move |ctx: &mut WorkerCtx<'_, '_>| {
        let rng = &mut ctx.rng;
        let w = (ctx.t.tid() as u32) % scale.warehouses;
        let kind = Mix::pick(mix, rng.gen_range(0..100));
        let sec = SectionId(SEC_TPCC_BASE + kind_index(kind));
        let now = clock::now();
        match kind {
            TpccTxKind::StockLevel => {
                let inp = tpcc::gen_stock_level(rng, &scale, w);
                lock.read_section(ctx.t, sec, &mut |a| db.stock_level(a, &inp));
            }
            TpccTxKind::OrderStatus => {
                let inp = tpcc::gen_order_status(rng, &scale, w);
                lock.read_section(ctx.t, sec, &mut |a| db.order_status(a, &inp));
            }
            TpccTxKind::Payment => {
                let inp = tpcc::gen_payment(rng, &scale, w);
                lock.write_section(ctx.t, sec, &mut |a| db.payment(a, &inp));
            }
            TpccTxKind::NewOrder => {
                let inp = tpcc::gen_new_order(rng, &scale, w, now);
                lock.write_section(ctx.t, sec, &mut |a| db.new_order(a, &inp));
            }
            TpccTxKind::Delivery => {
                let inp = tpcc::gen_delivery(rng, w, now);
                lock.write_section(ctx.t, sec, &mut |a| db.delivery(a, &inp));
            }
        }
    })
    .with_lock_name(lock.name())
}

fn kind_index(kind: TpccTxKind) -> u32 {
    match kind {
        TpccTxKind::StockLevel => 0,
        TpccTxKind::Delivery => 1,
        TpccTxKind::OrderStatus => 2,
        TpccTxKind::Payment => 3,
        TpccTxKind::NewOrder => 4,
    }
}

/// Per-worker state handed to the op closure.
pub struct WorkerCtx<'a, 'h> {
    /// The thread's lock/stat bundle.
    pub t: &'a mut LockThread<'h>,
    /// The thread's RNG (deterministic per seed/tid).
    pub rng: StdRng,
    /// Reusable key buffer for workloads that pre-draw a batch of keys per
    /// critical section. Allocating inside the timed loop would bill
    /// allocator time to the reported latency, so ops `clear()` and refill
    /// this instead.
    pub scratch: Vec<u64>,
}

impl std::fmt::Debug for WorkerCtx<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx")
            .field("tid", &self.t.tid())
            .finish()
    }
}

/// Generic timed run: every worker executes `op` in a loop until the
/// deadline, then statistics are merged.
pub fn run_generic(
    htm: &Htm,
    rc: &RunConfig,
    op: impl Fn(&mut WorkerCtx<'_, '_>) + Sync,
) -> RunReport {
    run_generic_traced(htm, rc, TraceConfig::Off, op).0
}

/// [`run_generic`] with per-thread event tracing: every worker records into
/// a private ring sized by `trace`, and the chronological snapshots come
/// back alongside the merged report (empty traces when `trace` is
/// [`TraceConfig::Off`]).
pub fn run_generic_traced(
    htm: &Htm,
    rc: &RunConfig,
    trace: TraceConfig,
    op: impl Fn(&mut WorkerCtx<'_, '_>) + Sync,
) -> (RunReport, Vec<ThreadTrace>) {
    assert!(rc.threads >= 1 && rc.threads <= htm.max_threads());
    let barrier = Barrier::new(rc.threads + 1);
    let stop = AtomicBool::new(false);
    let mut merged = SessionStats::default();
    let mut traces = Vec::with_capacity(rc.threads);
    let mut elapsed_s = 0.0;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..rc.threads {
            let (barrier, stop, op) = (&barrier, &stop, &op);
            handles.push(s.spawn(move || {
                let mut t = LockThread::with_trace(htm.thread(tid), trace);
                let mut ctx = WorkerCtx {
                    t: &mut t,
                    rng: StdRng::seed_from_u64(rc.seed ^ ((tid as u64 + 1) << 24)),
                    scratch: Vec::with_capacity(64),
                };
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    op(&mut ctx);
                }
                (t.stats, t.trace.snapshot())
            }));
        }
        barrier.wait();
        let t0 = clock::now();
        std::thread::sleep(rc.duration);
        stop.store(true, Ordering::Relaxed);
        // The measured window ends when the stop flag is raised, not after
        // every worker has been joined and its stats merged: billing the
        // join/merge time to the window systematically understates
        // throughput (workers do at most one trailing op each after the
        // flag flips, which is noise; join + merge of latency histograms
        // is not).
        elapsed_s = (clock::now() - t0) as f64 / 1e9;
        for h in handles {
            let (stats, tr) = h.join().expect("worker panicked");
            merged.merge(&stats);
            traces.push(tr);
        }
    });
    let report = RunReport {
        lock: String::new(),
        threads: rc.threads,
        throughput: merged.total_commits() as f64 / elapsed_s,
        stats: merged,
        elapsed_s,
        virtual_elapsed_s: None,
    };
    (report, traces)
}

/// Fixed-work run: every worker executes `op` exactly `ops_per_thread`
/// times instead of racing a wall-clock deadline. This is the only run
/// shape compatible with [`htm_sim::SchedulerKind::Deterministic`] — a
/// serialized schedule has no meaningful wall-clock deadline, and the
/// result must not depend on how fast the host happens to be.
///
/// Two deterministic-scheduler constraints shape the code:
///
/// * the OS start barrier comes *before* each worker claims its
///   [`htm_sim::ThreadCtx`]: claiming registers the thread with the
///   scheduler, and the deterministic scheduler serializes from the moment
///   the last participant registers — a worker parked on an OS barrier
///   after registering would hold the schedule token forever;
/// * there is no stop flag for a sleeping coordinator to set; the workers
///   just finish their quota.
///
/// The clocks start at the post-barrier rendezvous inside the workers, not
/// in the coordinator before spawning: thread spawn and `ThreadCtx` claim
/// cost would otherwise be billed to the measured window, inflating
/// elapsed time on short fixed-work runs. Wall elapsed is the earliest
/// worker start to the latest worker finish; under a deterministic
/// scheduler the workers additionally bracket the run on the *virtual*
/// clock, and throughput is reported against that ([`RunReport
/// ::virtual_elapsed_s`]) so fixed-work deterministic runs yield
/// bit-identical numbers on any host.
pub fn run_generic_ops(
    htm: &Htm,
    rc: &RunConfig,
    ops_per_thread: usize,
    trace: TraceConfig,
    op: impl Fn(&mut WorkerCtx<'_, '_>) + Sync,
) -> (RunReport, Vec<ThreadTrace>) {
    assert!(rc.threads >= 1 && rc.threads <= htm.max_threads());
    let barrier = Barrier::new(rc.threads);
    let mut merged = SessionStats::default();
    let mut traces = Vec::with_capacity(rc.threads);
    let mut wall_start = u64::MAX;
    let mut wall_end = 0u64;
    let mut virt_start = u64::MAX;
    let mut virt_end = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..rc.threads)
            .map(|tid| {
                let (barrier, op) = (&barrier, &op);
                s.spawn(move || {
                    barrier.wait();
                    let w0 = clock::wall_now();
                    let mut t = LockThread::with_trace(htm.thread(tid), trace);
                    // Bound to the scheduler from here on: `clock::now` is
                    // virtual under a deterministic scheduler.
                    let v0 = clock::now();
                    let mut ctx = WorkerCtx {
                        t: &mut t,
                        rng: StdRng::seed_from_u64(rc.seed ^ ((tid as u64 + 1) << 24)),
                        scratch: Vec::with_capacity(64),
                    };
                    for _ in 0..ops_per_thread {
                        op(&mut ctx);
                    }
                    let v1 = clock::now();
                    let w1 = clock::wall_now();
                    let trace = t.trace.snapshot();
                    (t.stats, trace, w0, w1, v0, v1)
                })
            })
            .collect();
        for h in handles {
            let (stats, tr, w0, w1, v0, v1) = h.join().expect("worker panicked");
            merged.merge(&stats);
            traces.push(tr);
            wall_start = wall_start.min(w0);
            wall_end = wall_end.max(w1);
            virt_start = virt_start.min(v0);
            virt_end = virt_end.max(v1);
        }
    });
    let elapsed_s = ((wall_end.saturating_sub(wall_start)) as f64 / 1e9).max(1e-9);
    let virtual_elapsed_s = ((virt_end.saturating_sub(virt_start)) as f64 / 1e9).max(1e-9);
    let deterministic = htm.scheduler().is_deterministic();
    let denominator = if deterministic {
        virtual_elapsed_s
    } else {
        elapsed_s
    };
    let report = RunReport {
        lock: String::new(),
        threads: rc.threads,
        throughput: merged.total_commits() as f64 / denominator,
        stats: merged,
        elapsed_s,
        virtual_elapsed_s: deterministic.then_some(virtual_elapsed_s),
    };
    (report, traces)
}

impl RunReport {
    /// Overrides the scheme label (figure benches use [`LockKind::name`],
    /// which distinguishes SpRWL variants).
    pub fn with_lock_name(mut self, name: impl Into<String>) -> Self {
        self.lock = name.into();
        self
    }
}

/// Builds a fresh hashmap point (runtime + lock + populated map).
pub fn hashmap_point(
    profile: CapacityProfile,
    spec: &HashmapSpec,
    kind: &LockKind,
    threads: usize,
) -> (Htm, Box<dyn RwSync>, SimHashMap) {
    let htm = htm_for(
        profile,
        threads,
        spec.cells_needed(threads) + 64 * threads * 8,
    );
    let lock = kind.build(&htm);
    let map = spec.build(htm.memory(), threads);
    (htm, lock, map)
}

/// Builds a fresh TPC-C point.
pub fn tpcc_point(
    profile: CapacityProfile,
    scale: TpccScale,
    kind: &LockKind,
    threads: usize,
) -> (Htm, Box<dyn RwSync>, TpccDb) {
    let htm = htm_for(profile, threads, scale.cells_needed() + 64 * threads * 8);
    let lock = kind.build(&htm);
    let db = TpccDb::new(htm.memory(), scale);
    (htm, lock, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_kind_names_match_paper_legends() {
        assert_eq!(LockKind::Tle.name(), "TLE");
        assert_eq!(LockKind::RwLe.name(), "RW-LE");
        assert_eq!(LockKind::Rwl.name(), "RWL");
        assert_eq!(LockKind::BrLock.name(), "BRLock");
        assert_eq!(LockKind::Mcs.name(), "MCS-RWL");
        assert_eq!(LockKind::Sprwl(SprwlConfig::default()).name(), "SpRWL");
        assert_eq!(LockKind::Sprwl(SprwlConfig::with_snzi()).name(), "SNZI");
        assert_eq!(LockKind::Sprwl(SprwlConfig::adaptive()).name(), "Adaptive");
        assert_eq!(LockKind::Sprwl(SprwlConfig::no_sched()).name(), "NoSched");
    }

    #[test]
    fn rwle_is_gated_to_power8_like_profiles() {
        assert!(!LockKind::RwLe.supports(&CapacityProfile::BROADWELL_SIM));
        assert!(LockKind::RwLe.supports(&CapacityProfile::POWER8_SIM));
        assert!(LockKind::Tle.supports(&CapacityProfile::BROADWELL_SIM));
    }

    #[test]
    fn paper_set_includes_rwle_only_on_power8() {
        let b: Vec<String> = LockKind::paper_set(&CapacityProfile::BROADWELL_SIM)
            .iter()
            .map(|k| k.name())
            .collect();
        let p: Vec<String> = LockKind::paper_set(&CapacityProfile::POWER8_SIM)
            .iter()
            .map(|k| k.name())
            .collect();
        assert!(!b.contains(&"RW-LE".to_string()));
        assert!(p.contains(&"RW-LE".to_string()));
        for required in ["TLE", "RWL", "BRLock", "SpRWL"] {
            assert!(b.contains(&required.to_string()), "{required} missing");
            assert!(p.contains(&required.to_string()), "{required} missing");
        }
    }

    #[test]
    fn run_report_percentages_are_consistent() {
        let mut stats = SessionStats::default();
        stats.record_commit(sprwl_locks::Role::Reader, CommitMode::Unins, 1_000);
        stats.record_commit(sprwl_locks::Role::Writer, CommitMode::Htm, 2_000);
        stats.record_commit(sprwl_locks::Role::Writer, CommitMode::Htm, 2_000);
        stats.record_commit(sprwl_locks::Role::Writer, CommitMode::Gl, 9_000);
        let rep = RunReport {
            lock: "X".into(),
            threads: 2,
            throughput: 4.0,
            stats,
            elapsed_s: 1.0,
            virtual_elapsed_s: None,
        };
        let total: f64 = CommitMode::ALL.iter().map(|&m| rep.commit_pct(m)).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((rep.commit_pct(CommitMode::Htm) - 50.0).abs() < 1e-9);
        let row = rep.row();
        assert!(row.contains('X'));
        let csv = rep.csv();
        assert_eq!(csv.split(',').count(), 16, "csv column count: {csv}");
    }

    #[test]
    fn csv_percentiles_are_ordered() {
        let mut stats = SessionStats::default();
        for ns in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
            for _ in 0..20 {
                stats.record_commit(sprwl_locks::Role::Reader, CommitMode::Unins, ns);
            }
        }
        let rep = RunReport {
            lock: "X".into(),
            threads: 1,
            throughput: 1.0,
            stats,
            elapsed_s: 1.0,
            virtual_elapsed_s: None,
        };
        let cols: Vec<u64> = rep
            .csv()
            .split(',')
            .skip(10)
            .take(3)
            .map(|c| c.parse().unwrap())
            .collect();
        assert!(
            cols[0] <= cols[1] && cols[1] <= cols[2],
            "p50<=p95<=p99: {cols:?}"
        );
        assert!(
            rep.row().contains('/'),
            "row shows slash-joined percentiles"
        );
    }

    #[test]
    fn conflict_summary_reports_attributed_lines() {
        let mut stats = SessionStats::default();
        let rep_empty = RunReport {
            lock: "X".into(),
            threads: 1,
            throughput: 1.0,
            stats: stats.clone(),
            elapsed_s: 1.0,
            virtual_elapsed_s: None,
        };
        assert!(rep_empty.conflict_summary(4).is_none());
        stats.record_conflict(7, 2);
        stats.record_conflict(7, 3);
        stats.record_conflict(9, 1);
        let rep = RunReport {
            lock: "X".into(),
            threads: 1,
            throughput: 1.0,
            stats,
            elapsed_s: 1.0,
            virtual_elapsed_s: None,
        };
        let s = rep.conflict_summary(1).unwrap();
        assert!(s.contains("3 attributed"), "{s}");
        assert!(s.contains("line 7 x2"), "{s}");
        assert!(!s.contains("line 9"), "k=1 truncates: {s}");
    }

    #[test]
    fn traced_run_returns_per_thread_lifecycles() {
        let htm = htm_for(CapacityProfile::BROADWELL_SIM, 2, 1024);
        let cell = htm.memory().alloc(1).cell(0);
        let lock = SpRwl::with_defaults(&htm);
        let (rep, traces) = run_generic_traced(
            &htm,
            &RunConfig {
                threads: 2,
                duration: Duration::from_millis(20),
                seed: 1,
            },
            TraceConfig::ring(128),
            |ctx| {
                lock.write_section(ctx.t, SectionId(0), &mut |a| {
                    let v = a.read(cell)?;
                    a.write(cell, v + 1)?;
                    Ok(v)
                });
            },
        );
        assert!(rep.stats.total_commits() > 0);
        assert_eq!(traces.len(), 2);
        for tr in &traces {
            assert!(!tr.events.is_empty(), "tid {} recorded nothing", tr.tid);
        }
        // Off yields empty traces.
        let (_, off) = run_generic_traced(
            &htm,
            &RunConfig {
                threads: 2,
                duration: Duration::from_millis(5),
                seed: 1,
            },
            TraceConfig::Off,
            |ctx| {
                lock.write_section(ctx.t, SectionId(0), &mut |a| a.read(cell));
            },
        );
        assert!(off.iter().all(|tr| tr.events.is_empty()));
    }

    #[test]
    fn run_generic_ops_completes_fixed_work_free_running() {
        let htm = htm_for(CapacityProfile::BROADWELL_SIM, 2, 1024);
        let cell = htm.memory().alloc(1).cell(0);
        let lock = Tle::new(&htm);
        let (rep, traces) = run_generic_ops(
            &htm,
            &RunConfig {
                threads: 2,
                duration: Duration::ZERO,
                seed: 1,
            },
            40,
            TraceConfig::Off,
            |ctx| {
                lock.write_section(ctx.t, SectionId(0), &mut |a| {
                    let v = a.read(cell)?;
                    a.write(cell, v + 1)?;
                    Ok(v)
                });
            },
        );
        assert_eq!(rep.stats.total_commits(), 80, "2 threads x 40 ops");
        assert_eq!(htm.direct(0).load(cell), 80);
        assert_eq!(traces.len(), 2);
    }

    #[test]
    fn run_generic_ops_is_bit_identical_under_the_deterministic_scheduler() {
        let point = || {
            let htm = Htm::new(
                HtmConfig {
                    capacity: CapacityProfile::BROADWELL_SIM,
                    max_threads: 2,
                    scheduler: htm_sim::SchedulerKind::Deterministic { schedule_seed: 42 },
                    ..HtmConfig::default()
                },
                1024,
            );
            let cell = htm.memory().alloc(1).cell(0);
            let lock = SpRwl::with_defaults(&htm);
            let (rep, traces) = run_generic_ops(
                &htm,
                &RunConfig {
                    threads: 2,
                    duration: Duration::ZERO,
                    seed: 7,
                },
                50,
                TraceConfig::ring(256),
                |ctx| {
                    let write = ctx.rng.gen_bool(0.5);
                    if write {
                        lock.write_section(ctx.t, SectionId(0), &mut |a| {
                            let v = a.read(cell)?;
                            a.write(cell, v + 1)?;
                            Ok(v)
                        });
                    } else {
                        lock.read_section(ctx.t, SectionId(1), &mut |a| a.read(cell));
                    }
                },
            );
            (rep.stats, traces)
        };
        let (s1, t1) = point();
        let (s2, t2) = point();
        assert_eq!(
            s1.total_commits(),
            100,
            "every section commits exactly once"
        );
        assert_eq!(s1, s2, "stats must replay bit-identically");
        assert_eq!(t1, t2, "traces must replay bit-identically");
    }

    #[test]
    fn env_knobs_have_sane_defaults() {
        // Defaults apply when the variables are unset/garbage; we cannot
        // mutate the environment safely in tests, so only assert the
        // defaults' shape via the parsing helpers' outputs.
        let threads = RunConfig::bench_threads();
        assert!(!threads.is_empty());
        assert!(threads.iter().all(|&t| t >= 1));
        let d = RunConfig::bench_duration();
        assert!(d.as_millis() >= 1);
    }

    #[test]
    fn run_generic_counts_commits_and_elapsed() {
        let htm = htm_for(CapacityProfile::BROADWELL_SIM, 2, 1024);
        let cell = htm.memory().alloc(1).cell(0);
        let lock = Tle::new(&htm);
        let rep = run_generic(
            &htm,
            &RunConfig {
                threads: 2,
                duration: Duration::from_millis(30),
                seed: 1,
            },
            |ctx| {
                lock.write_section(ctx.t, SectionId(0), &mut |a| {
                    let v = a.read(cell)?;
                    a.write(cell, v + 1)?;
                    Ok(v)
                });
            },
        );
        assert!(rep.stats.total_commits() > 0);
        assert!(rep.elapsed_s > 0.02);
        assert_eq!(
            htm.direct(0).load(cell),
            rep.stats.total_commits(),
            "every commit incremented exactly once"
        );
        assert!(rep.throughput > 0.0);
    }

    #[test]
    fn hashmap_point_builds_a_working_stack() {
        let spec = HashmapSpec {
            buckets: 16,
            population: 128,
            key_space: 256,
            lookups_per_read: 2,
            update_pct: 50,
        };
        let kind = LockKind::Sprwl(SprwlConfig::default());
        let (htm, lock, map) = hashmap_point(CapacityProfile::POWER8_SIM, &spec, &kind, 2);
        let rep = run_hashmap(
            &htm,
            &*lock,
            &map,
            &spec,
            &RunConfig {
                threads: 2,
                duration: Duration::from_millis(25),
                seed: 3,
            },
        );
        assert!(rep.stats.total_commits() > 0);
    }

    #[test]
    fn tpcc_point_builds_and_audits() {
        let kind = LockKind::Tle;
        let scale = TpccScale {
            warehouses: 1,
            customers_per_district: 16,
            items: 64,
            ..TpccScale::default()
        };
        let (htm, lock, db) = tpcc_point(CapacityProfile::POWER8_SIM, scale, &kind, 2);
        let rep = run_tpcc(
            &htm,
            &*lock,
            &db,
            &Mix::PAPER,
            &RunConfig {
                threads: 2,
                duration: Duration::from_millis(25),
                seed: 5,
            },
        );
        assert!(rep.stats.total_commits() > 0);
        assert!(db.audit_ytd(htm.memory()));
        assert!(db.audit_order_queues(htm.memory()));
    }
}
