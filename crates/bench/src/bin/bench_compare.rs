//! `bench-compare` — diffs two `BENCH_*.json` result documents against
//! per-metric regression thresholds.
//!
//! ```text
//! bench-compare <baseline.json> <candidate.json>
//!               [--throughput-drop-pct 10] [--abort-rise-pp 5]
//!               [--p99-rise-pct 50] [--p99-floor-ns 2000]
//! ```
//!
//! Exit-code contract (stable — CI scripts rely on it):
//!
//! * `0` — comparable, no metric crossed its threshold;
//! * `1` — at least one regression (each is printed as a `REGRESSION` line);
//! * `2` — usage, I/O, parse or schema error (including mode/profile
//!   mismatches: det and wall numbers are never silently compared);
//! * `3` — documents parsed but share no comparable points.

use std::process::ExitCode;

use sprwl_bench::results::{compare, BenchResults, Thresholds};

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-compare <baseline.json> <candidate.json> \
         [--throughput-drop-pct F] [--abort-rise-pp F] [--p99-rise-pct F] [--p99-floor-ns N]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<BenchResults, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchResults::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut th = Thresholds::default();
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |flag: &str| -> Result<f64, ExitCode> {
            let v = args.next().ok_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })?;
            v.parse::<f64>().map_err(|_| {
                eprintln!("error: bad value {v:?} for {flag}");
                usage()
            })
        };
        match a.as_str() {
            "--throughput-drop-pct" => match num("--throughput-drop-pct") {
                Ok(v) => th.throughput_drop = v / 100.0,
                Err(code) => return code,
            },
            "--abort-rise-pp" => match num("--abort-rise-pp") {
                Ok(v) => th.abort_rise_pp = v,
                Err(code) => return code,
            },
            "--p99-rise-pct" => match num("--p99-rise-pct") {
                Ok(v) => th.p99_rise = v / 100.0,
                Err(code) => return code,
            },
            "--p99-floor-ns" => match num("--p99-floor-ns") {
                Ok(v) if v >= 0.0 => th.p99_floor_ns = v as u64,
                Ok(_) | Err(_) => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with("--") => files.push(f.to_string()),
            other => {
                eprintln!("error: unknown flag {other:?}");
                return usage();
            }
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        return usage();
    };

    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match compare(&baseline, &candidate, &th) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "baseline  {} @ {} ({} points)",
        baseline.file_name(),
        baseline.git_commit,
        baseline.points.len()
    );
    println!(
        "candidate {} @ {} ({} points)",
        candidate.file_name(),
        candidate.git_commit,
        candidate.points.len()
    );
    println!(
        "matched {} point(s); thresholds: throughput -{:.0}%, aborts +{:.1}pp, p99 +{:.0}% (floor {}ns)",
        report.matched,
        100.0 * th.throughput_drop,
        th.abort_rise_pp,
        100.0 * th.p99_rise,
        th.p99_floor_ns
    );
    for key in &report.missing_in_candidate {
        println!("MISSING in candidate: {key}");
    }
    for key in &report.new_in_candidate {
        println!("NEW in candidate: {key}");
    }
    if report.improvements > 0 {
        println!(
            "{} point(s) improved beyond the threshold",
            report.improvements
        );
    }

    if report.matched == 0 {
        eprintln!("error: no comparable points between the two documents");
        return ExitCode::from(3);
    }
    if report.regressions.is_empty() {
        println!("OK: no regressions");
        ExitCode::SUCCESS
    } else {
        for r in &report.regressions {
            println!("{}", r.describe());
        }
        println!("FAIL: {} regression(s)", report.regressions.len());
        ExitCode::from(1)
    }
}
