//! `bench-sweep` — runs a thread-sweep grid and writes one
//! `BENCH_<category>_<date>.json` results document.
//!
//! ```text
//! bench-sweep [--det | --wall]
//!             [--threads 1,2,4] [--seed 42]
//!             [--ops 1500] [--warmup-ops 150] [--schedule-seed 7]   (det)
//!             [--secs 0.25] [--warmup-secs 0.05]                    (wall)
//!             [--locks SpRWL,TLE,RWL] [--workloads read-only,...]
//!             [--fill 1024,4096,16384]
//!             [--profile broadwell-sim | power8-sim]
//!             [--trace off|ring:CAP|sampled:RATE:CAP]...
//!             [--capture FILE.jsonl]
//!             [--category sweep] [--out DIR]
//!             [--date YYYY-MM-DD] [--commit HASH]
//! ```
//!
//! `--det` (the default) measures fixed work on the deterministic
//! scheduler's virtual clock: the document is bit-identical for the same
//! flags on any host, which is what makes it diffable in CI via
//! `bench-compare`. `--wall` races a wall-clock window instead. `--date`
//! and `--commit` override the provenance stamps (the defaults probe the
//! system clock and `git rev-parse`).
//!
//! `--trace` (repeatable) adds a tracing policy to the sweep grid; with
//! more than one policy each point's workload name is suffixed
//! `@<policy>`, so one document holds e.g. `off` next to `sampled:64:4096`
//! numbers for overhead comparison. `--capture` re-runs the grid's last
//! (workload, lock, threads) point under the last `--trace` policy and
//! writes its per-thread traces as JSONL — feed that to `sprwl-analyze`.
//!
//! `--server` switches to the service grid: the `sprwl-server` sharded
//! async KV store under redis-shaped load, swept over `--shards N,N` ×
//! tracking flavours × `--threads` worker counts. Server sweeps are
//! deterministic-only (`--wall` is rejected); `--locks` restricts the
//! tracking flavours (`SpRWL`, `SNZI`, `BRAVO` — defaults to SNZI and
//! BRAVO), and the emitted category defaults to `server`.
//!
//! `--capacity` switches to the capacity grid: big-footprint writers
//! (TPC-C under the delivery-pressure mix, sorted-list range scans) across
//! every capacity profile (broadwell-sim, power8-sim, tiny — or just the
//! one named by `--profile`), each measured with plain SpRWL and with the
//! capacity-stretching ladder on. Capacity sweeps are deterministic-only;
//! the last `--threads` entry is the worker count, and the emitted
//! category defaults to `capacity`.

use std::process::ExitCode;
use std::time::Duration;

use sprwl::{ReaderTracking, SprwlConfig};
use sprwl_bench::results::{git_commit, today};
use sprwl_bench::server_sweep::{run_server_sweep, ServerSweepConfig};
use sprwl_bench::sweep::{run_sweep, run_sweep_point_traced, SweepConfig, SweepMode};
use sprwl_bench::{BenchPoint, LockKind};
use sprwl_trace::TraceConfig;
use sprwl_workloads::SweepWorkload;

fn parse_lock(name: &str) -> Option<LockKind> {
    Some(match name {
        "SpRWL" => LockKind::Sprwl(SprwlConfig::default()),
        "SNZI" => LockKind::Sprwl(SprwlConfig::with_snzi()),
        "BRAVO" => LockKind::Sprwl(SprwlConfig::with_bravo()),
        "TLE" => LockKind::Tle,
        "RW-LE" => LockKind::RwLe,
        "RWL" => LockKind::Rwl,
        "BRLock" => LockKind::BrLock,
        "BRLock+bias" => LockKind::BrLockBias,
        "PF-RWL" => LockKind::PhaseFair,
        "MCS-RWL" => LockKind::Mcs,
        "PRWL" => LockKind::Passive,
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-sweep [--det|--wall] [--threads N,N,..] [--seed N] \
         [--ops N] [--warmup-ops N] [--schedule-seed N] [--secs F] [--warmup-secs F] \
         [--locks A,B,..] [--workloads A,B,..] [--fill N,N,..] [--profile NAME] \
         [--trace off|ring:CAP|sampled:RATE:CAP].. [--capture FILE.jsonl] \
         [--server] [--shards N,N,..] [--capacity] \
         [--category NAME] [--out DIR] [--date YYYY-MM-DD] [--commit HASH]"
    );
    ExitCode::from(2)
}

/// The tracking flavour a `--locks` name selects under `--server`, if any.
fn parse_tracking(name: &str) -> Option<ReaderTracking> {
    Some(match name {
        "SpRWL" => ReaderTracking::Flags,
        "SNZI" => ReaderTracking::Snzi,
        "BRAVO" => ReaderTracking::Bravo,
        "SpRWL-adaptive" => ReaderTracking::Adaptive,
        _ => return None,
    })
}

fn main() -> ExitCode {
    let mut cfg = SweepConfig::default();
    let mut det = true;
    let mut ops = 1500usize;
    let mut warmup_ops = 150usize;
    let mut schedule_seed = 7u64;
    let mut secs = 0.25f64;
    let mut warmup_secs = 0.05f64;
    let mut out_dir = std::path::PathBuf::from(".");
    let mut date = today();
    let mut commit = git_commit();
    let mut trace_axis: Vec<(String, TraceConfig)> = Vec::new();
    let mut capture_path: Option<std::path::PathBuf> = None;
    let mut server = false;
    let mut capacity = false;
    let mut shards: Vec<usize> = vec![2, 4];
    let mut locks_raw: Option<String> = None;
    let mut category_set = false;
    let mut wall_requested = false;
    let mut ops_set = false;
    let mut profile_set = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| -> Result<String, ExitCode> {
            args.next().ok_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })
        };
        macro_rules! parse_val {
            ($flag:expr, $ty:ty) => {
                match val($flag) {
                    Ok(v) => match v.parse::<$ty>() {
                        Ok(p) => p,
                        Err(_) => {
                            eprintln!("error: bad value {v:?} for {}", $flag);
                            return usage();
                        }
                    },
                    Err(code) => return code,
                }
            };
        }
        match a.as_str() {
            "--det" => det = true,
            "--wall" => {
                det = false;
                wall_requested = true;
            }
            "--server" => server = true,
            "--capacity" => capacity = true,
            "--shards" => {
                let v = match val("--shards") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let parsed: Result<Vec<usize>, _> =
                    v.split(',').map(|t| t.trim().parse::<usize>()).collect();
                match parsed {
                    Ok(s) if !s.is_empty() && s.iter().all(|&n| n >= 1) => shards = s,
                    _ => {
                        eprintln!("error: bad shard list {v:?}");
                        return usage();
                    }
                }
            }
            "--seed" => cfg.seed = parse_val!("--seed", u64),
            "--ops" => {
                ops = parse_val!("--ops", usize);
                ops_set = true;
            }
            "--warmup-ops" => warmup_ops = parse_val!("--warmup-ops", usize),
            "--schedule-seed" => schedule_seed = parse_val!("--schedule-seed", u64),
            "--secs" => secs = parse_val!("--secs", f64),
            "--warmup-secs" => warmup_secs = parse_val!("--warmup-secs", f64),
            "--threads" => {
                let v = match val("--threads") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let parsed: Result<Vec<usize>, _> =
                    v.split(',').map(|t| t.trim().parse::<usize>()).collect();
                match parsed {
                    Ok(t) if !t.is_empty() && t.iter().all(|&n| n >= 1) => cfg.threads = t,
                    _ => {
                        eprintln!("error: bad thread list {v:?}");
                        return usage();
                    }
                }
            }
            "--locks" => {
                // Deferred: the same flag names lock schemes for the
                // lock-level grid and tracking flavours under --server.
                locks_raw = match val("--locks") {
                    Ok(v) => Some(v),
                    Err(code) => return code,
                };
            }
            "--fill" => {
                let v = match val("--fill") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let parsed: Result<Vec<u64>, _> =
                    v.split(',').map(|t| t.trim().parse::<u64>()).collect();
                match parsed {
                    Ok(f) if !f.is_empty() && f.iter().all(|&n| n >= 1) => cfg.fill_levels = f,
                    _ => {
                        eprintln!("error: bad fill list {v:?}");
                        return usage();
                    }
                }
            }
            "--workloads" => {
                let v = match val("--workloads") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let mut ws = Vec::new();
                for name in v.split(',') {
                    match SweepWorkload::parse(name.trim()) {
                        Some(w) => ws.push(w),
                        None => {
                            eprintln!(
                                "error: unknown workload {name:?} (expected read-only, \
                                 independent-write, hot-key or mixed-90-10)"
                            );
                            return usage();
                        }
                    }
                }
                cfg.workloads = ws;
            }
            "--profile" => {
                let v = match val("--profile") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                cfg.profile = match v.as_str() {
                    "broadwell-sim" => htm_sim::CapacityProfile::BROADWELL_SIM,
                    "power8-sim" => htm_sim::CapacityProfile::POWER8_SIM,
                    "tiny" => htm_sim::CapacityProfile::TINY,
                    _ => {
                        eprintln!("error: unknown profile {v:?}");
                        return usage();
                    }
                };
                profile_set = true;
            }
            "--trace" => {
                let v = match val("--trace") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                match TraceConfig::parse(&v) {
                    Some(tc) => trace_axis.push((v, tc)),
                    None => {
                        eprintln!(
                            "error: bad trace policy {v:?} (expected off, ring:CAP or \
                             sampled:RATE:CAP)"
                        );
                        return usage();
                    }
                }
            }
            "--capture" => {
                capture_path = match val("--capture") {
                    Ok(v) => Some(v.into()),
                    Err(code) => return code,
                }
            }
            "--category" => {
                cfg.category = match val("--category") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                category_set = true;
            }
            "--out" => {
                out_dir = match val("--out") {
                    Ok(v) => v.into(),
                    Err(code) => return code,
                }
            }
            "--date" => {
                date = match val("--date") {
                    Ok(v) => v,
                    Err(code) => return code,
                }
            }
            "--commit" => {
                commit = match val("--commit") {
                    Ok(v) => v,
                    Err(code) => return code,
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown flag {other:?}");
                return usage();
            }
        }
    }

    if capacity {
        if server {
            eprintln!("error: --capacity and --server are mutually exclusive grids");
            return ExitCode::from(2);
        }
        if wall_requested {
            eprintln!(
                "error: --capacity is deterministic-only (fixed work on the virtual \
                 clock makes the document diffable in CI); drop --wall"
            );
            return ExitCode::from(2);
        }
        if capture_path.is_some() {
            eprintln!("error: --capture applies to the lock-level grid, not --capacity");
            return ExitCode::from(2);
        }
        let mut ccfg = sprwl_bench::CapacitySweepConfig {
            seed: cfg.seed,
            schedule_seed,
            threads: *cfg.threads.last().expect("thread list is never empty"),
            ..sprwl_bench::CapacitySweepConfig::default()
        };
        if ops_set {
            ccfg.ops_per_thread = ops;
        }
        if profile_set {
            ccfg.profiles = vec![cfg.profile];
        }
        if category_set {
            ccfg.category = cfg.category.clone();
        }
        let results = sprwl_bench::run_capacity_sweep(&ccfg, &date, &commit);
        println!(
            "# {} @ {} ({}, {} points)",
            results.file_name(),
            results.git_commit,
            results.mode,
            results.points.len()
        );
        println!("{}", BenchPoint::header());
        for p in &results.points {
            println!("{}", p.row());
        }
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("error: cannot create {}: {e}", out_dir.display());
            return ExitCode::from(2);
        }
        let path = out_dir.join(results.file_name());
        if let Err(e) = std::fs::write(&path, results.to_json()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    if server {
        if wall_requested {
            eprintln!(
                "error: --server is deterministic-only (the service parks futures on \
                 wake-lists and measures on the virtual clock); drop --wall"
            );
            return ExitCode::from(2);
        }
        if capture_path.is_some() {
            eprintln!("error: --capture applies to the lock-level grid, not --server");
            return ExitCode::from(2);
        }
        let mut scfg = ServerSweepConfig {
            shard_counts: shards,
            workers: cfg.threads.clone(),
            seed: cfg.seed,
            schedule_seed,
            warmup_ops,
            ops_per_worker: ops,
            ..ServerSweepConfig::default()
        };
        if category_set {
            scfg.category = cfg.category.clone();
        }
        if let Some(raw) = &locks_raw {
            let mut trackings = Vec::new();
            for name in raw.split(',') {
                match parse_tracking(name.trim()) {
                    Some(t) => trackings.push(t),
                    None => {
                        eprintln!(
                            "error: unknown tracking {name:?} under --server (expected \
                             SpRWL, SNZI, BRAVO or SpRWL-adaptive)"
                        );
                        return usage();
                    }
                }
            }
            scfg.trackings = trackings;
        }
        let results = run_server_sweep(&scfg, &date, &commit);
        println!(
            "# {} @ {} ({}, {} points)",
            results.file_name(),
            results.git_commit,
            results.mode,
            results.points.len()
        );
        println!("{}", BenchPoint::header());
        for p in &results.points {
            println!("{}", p.row());
        }
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("error: cannot create {}: {e}", out_dir.display());
            return ExitCode::from(2);
        }
        let path = out_dir.join(results.file_name());
        if let Err(e) = std::fs::write(&path, results.to_json()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    if let Some(raw) = &locks_raw {
        let mut locks = Vec::new();
        for name in raw.split(',') {
            match parse_lock(name.trim()) {
                Some(l) => locks.push(l),
                None => {
                    eprintln!(
                        "error: unknown lock {name:?} (expected SpRWL, SNZI, BRAVO, \
                         TLE, RW-LE, RWL, BRLock, BRLock+bias, PF-RWL, MCS-RWL or PRWL)"
                    );
                    return usage();
                }
            }
        }
        cfg.locks = locks;
    }

    if det {
        for l in &cfg.locks {
            if !l.det_compatible() {
                eprintln!(
                    "note: skipping {} under --det (it parks on OS primitives the serialized \
                     scheduler cannot see); use --wall to measure it",
                    l.name()
                );
            }
        }
    }
    cfg.mode = if det {
        SweepMode::Det {
            warmup_ops,
            ops_per_thread: ops,
            schedule_seed,
        }
    } else {
        SweepMode::Wall {
            warmup: Duration::from_secs_f64(warmup_secs),
            duration: Duration::from_secs_f64(secs),
        }
    };

    if !trace_axis.is_empty() {
        cfg.traces = trace_axis;
    }

    let results = run_sweep(&cfg, &date, &commit);

    println!(
        "# {} @ {} ({}, {}, {} points)",
        results.file_name(),
        results.git_commit,
        results.mode,
        results.capacity_profile,
        results.points.len()
    );
    println!("{}", BenchPoint::header());
    for p in &results.points {
        println!("{}", p.row());
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: cannot create {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }
    let path = out_dir.join(results.file_name());
    if let Err(e) = std::fs::write(&path, results.to_json()) {
        eprintln!("error: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", path.display());

    // One more pass over the grid's last point, traces harvested, for
    // offline analysis (`sprwl-analyze`). Deterministic mode re-produces
    // the exact run the document measured.
    if let Some(capture) = capture_path {
        let Some((label, trace)) = cfg.traces.last() else {
            unreachable!("cfg.traces is never empty");
        };
        if matches!(trace, TraceConfig::Off) {
            eprintln!("note: capturing with trace policy `off` — the capture will be vacuous");
        }
        let det = matches!(cfg.mode, SweepMode::Det { .. });
        let lock = cfg
            .locks
            .iter()
            .rev()
            .find(|l| l.supports(&cfg.profile) && (!det || l.det_compatible()));
        let (Some(lock), Some(&workload), Some(&threads)) =
            (lock, cfg.workloads.last(), cfg.threads.last())
        else {
            eprintln!("error: --capture needs at least one runnable grid point");
            return ExitCode::from(2);
        };
        let (_, traces) = run_sweep_point_traced(
            &cfg.profile,
            lock,
            workload,
            threads,
            cfg.seed,
            &cfg.mode,
            trace,
            true,
        );
        if let Err(e) = sprwl_trace::export::write_jsonl_file(&capture, &traces) {
            eprintln!("error: cannot write {}: {e}", capture.display());
            return ExitCode::from(2);
        }
        println!(
            "captured {} ({} {:?} x{threads}, trace {label})",
            capture.display(),
            lock.name(),
            workload.name(),
        );
    }
    ExitCode::SUCCESS
}
