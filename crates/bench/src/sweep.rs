//! Thread-sweep concurrency harness behind the `bench-sweep` binary.
//!
//! Runs a grid of (workload × lock × thread-count) points over the
//! hashmap micro-benchmark, each with a warmup phase followed by a
//! measured window, and packs the grid into one schema-versioned
//! [`BenchResults`] document. Two run modes:
//!
//! * **wall** — free-running OS threads race a wall-clock deadline
//!   (warmup seconds, then measured seconds). The numbers depend on the
//!   host; use for local perf hunting.
//! * **det** — the deterministic serialized scheduler with fixed work per
//!   thread and the virtual clock as the measured window. Throughput,
//!   latency percentiles and abort counts are bit-identical for the same
//!   `(seed, schedule_seed, config, workload)` on any host, which is what
//!   lets CI diff two result files without noise margins swallowing real
//!   regressions.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use htm_sim::{clock, CapacityProfile, Htm, HtmConfig, SchedulerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprwl_locks::{LockThread, RwSync, SessionStats};
use sprwl_trace::{ThreadTrace, TraceConfig};
use sprwl_workloads::spec::{hashmap_read_cs, hashmap_write_cs};
use sprwl_workloads::{HashmapSpec, SimHashMap, SweepWorkload};

use crate::harness::{LockKind, WorkerCtx, SEC_HASH_READ, SEC_HASH_WRITE};
use crate::results::{BenchPoint, BenchResults, Hardware, SCHEMA_MINOR, SCHEMA_VERSION};

/// How a sweep point is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Timed window on free-running OS threads.
    Wall {
        /// Warmup phase (discarded).
        warmup: Duration,
        /// Measured window.
        duration: Duration,
    },
    /// Fixed work per thread under the deterministic serialized scheduler,
    /// measured on the virtual clock — wall-clock-free and bit-identical
    /// across runs and hosts.
    Det {
        /// Operations per thread discarded as warmup.
        warmup_ops: usize,
        /// Operations per thread in the measured window.
        ops_per_thread: usize,
        /// Seed of the schedule PRNG (independent of the workload seed).
        schedule_seed: u64,
    },
}

impl SweepMode {
    /// The `mode` string recorded in the results document.
    pub fn label(&self) -> &'static str {
        match self {
            SweepMode::Wall { .. } => "wall",
            SweepMode::Det { .. } => "det",
        }
    }
}

/// Full description of one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Simulated-HTM capacity profile.
    pub profile: CapacityProfile,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Workload PRNG seed.
    pub seed: u64,
    /// Run mode.
    pub mode: SweepMode,
    /// Lock schemes to compare.
    pub locks: Vec<LockKind>,
    /// Workloads to run.
    pub workloads: Vec<SweepWorkload>,
    /// Tracing policies to sweep, as `(label, config)` pairs. With more
    /// than one entry each point's workload name is suffixed `@label`, so
    /// a single results document can hold e.g. `off` next to `sampled`
    /// numbers for overhead comparisons.
    pub traces: Vec<(String, TraceConfig)>,
    /// Fill levels (map populations) to sweep — the latency-vs-data-size
    /// axis. Empty means each workload's default spec; non-empty overrides
    /// the population (key space scales with it, buckets stay fixed so
    /// chains lengthen) and suffixes each point's workload name
    /// `#fill<population>`.
    pub fill_levels: Vec<u64>,
    /// Result category (names the output file).
    pub category: String,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            profile: CapacityProfile::BROADWELL_SIM,
            threads: vec![1, 2, 4],
            seed: 42,
            mode: SweepMode::Det {
                warmup_ops: 150,
                ops_per_thread: 1500,
                schedule_seed: 7,
            },
            // BRLock, not RWL, is the default pessimistic baseline: the
            // default mode is deterministic and RWL parks on an OS condvar
            // the serialized scheduler cannot see (see
            // [`LockKind::det_compatible`]).
            locks: vec![
                LockKind::Sprwl(sprwl::SprwlConfig::default()),
                LockKind::Tle,
                LockKind::BrLock,
            ],
            workloads: SweepWorkload::ALL.to_vec(),
            traces: vec![("off".to_string(), TraceConfig::Off)],
            fill_levels: Vec::new(),
            category: "sweep".to_string(),
        }
    }
}

/// Runs the whole grid and assembles the results document.
///
/// `date` and `git_commit` are provenance strings stamped into the
/// document (see [`crate::results::today`] and
/// [`crate::results::git_commit`]); they are parameters rather than
/// probed here so deterministic tests can pin them.
pub fn run_sweep(cfg: &SweepConfig, date: &str, git_commit: &str) -> BenchResults {
    let mut params = std::collections::BTreeMap::new();
    params.insert("seed".to_string(), cfg.seed.to_string());
    match cfg.mode {
        SweepMode::Wall { warmup, duration } => {
            params.insert("warmup_s".to_string(), format!("{}", warmup.as_secs_f64()));
            params.insert("secs".to_string(), format!("{}", duration.as_secs_f64()));
        }
        SweepMode::Det {
            warmup_ops,
            ops_per_thread,
            schedule_seed,
        } => {
            params.insert("warmup_ops".to_string(), warmup_ops.to_string());
            params.insert("ops_per_thread".to_string(), ops_per_thread.to_string());
            params.insert("schedule_seed".to_string(), schedule_seed.to_string());
        }
    }
    params.insert(
        "threads".to_string(),
        cfg.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    params.insert(
        "traces".to_string(),
        cfg.traces
            .iter()
            .map(|(l, _)| l.clone())
            .collect::<Vec<_>>()
            .join(","),
    );
    if !cfg.fill_levels.is_empty() {
        params.insert(
            "fills".to_string(),
            cfg.fill_levels
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
    }
    // The fill axis: `None` is the workload's own spec; `Some(p)` overrides
    // the population (and scales the key space) and tags the point.
    let fills: Vec<Option<u64>> = if cfg.fill_levels.is_empty() {
        vec![None]
    } else {
        cfg.fill_levels.iter().copied().map(Some).collect()
    };
    let mut points = Vec::new();
    let det = matches!(cfg.mode, SweepMode::Det { .. });
    for workload in &cfg.workloads {
        for lock in &cfg.locks {
            if !lock.supports(&cfg.profile) || (det && !lock.det_compatible()) {
                continue;
            }
            for &threads in &cfg.threads {
                for fill in &fills {
                    let mut spec = workload.spec();
                    if let Some(population) = *fill {
                        spec.population = population;
                        spec.key_space = population * 2;
                    }
                    for (trace_label, trace) in &cfg.traces {
                        let (mut point, _) = run_sweep_point_spec_traced(
                            &cfg.profile,
                            lock,
                            *workload,
                            &spec,
                            threads,
                            cfg.seed,
                            &cfg.mode,
                            trace,
                            false,
                        );
                        if let Some(population) = *fill {
                            point.workload = format!("{}#fill{population}", point.workload);
                        }
                        if cfg.traces.len() > 1 {
                            point.workload = format!("{}@{trace_label}", point.workload);
                        }
                        points.push(point);
                    }
                }
            }
        }
    }
    BenchResults {
        schema_version: SCHEMA_VERSION,
        schema_minor: SCHEMA_MINOR,
        category: cfg.category.clone(),
        date: date.to_string(),
        git_commit: git_commit.to_string(),
        mode: cfg.mode.label().to_string(),
        capacity_profile: cfg.profile.name.to_string(),
        hardware: Hardware::probe(),
        params,
        points,
    }
}

/// Runs one (workload, lock, threads) point: builds a fresh runtime and
/// populated map, warms up, measures, and digests the merged statistics.
///
/// # Panics
///
/// Panics when asked to run a det-incompatible lock in
/// [`SweepMode::Det`] (see [`LockKind::det_compatible`]) — failing loudly
/// beats deadlocking the serialized schedule.
pub fn run_sweep_point(
    profile: &CapacityProfile,
    lock_kind: &LockKind,
    workload: SweepWorkload,
    threads: usize,
    seed: u64,
    mode: &SweepMode,
) -> BenchPoint {
    run_sweep_point_traced(
        profile,
        lock_kind,
        workload,
        threads,
        seed,
        mode,
        &TraceConfig::Off,
        false,
    )
    .0
}

/// [`run_sweep_point`] with an explicit per-thread tracing policy —
/// the trace-overhead axis of the sweep. When `capture` is set, the
/// measured run's per-thread traces are harvested and returned (in thread
/// order) for export or offline analysis; otherwise the vector is empty.
///
/// The trace buffer's loss counters are folded into the merged
/// [`SessionStats`] either way, so `trace_dropped` / `trace_unsampled`
/// travel with the point's statistics.
///
/// # Panics
///
/// Same det-compatibility panic as [`run_sweep_point`].
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_point_traced(
    profile: &CapacityProfile,
    lock_kind: &LockKind,
    workload: SweepWorkload,
    threads: usize,
    seed: u64,
    mode: &SweepMode,
    trace: &TraceConfig,
    capture: bool,
) -> (BenchPoint, Vec<ThreadTrace>) {
    run_sweep_point_spec_traced(
        profile,
        lock_kind,
        workload,
        &workload.spec(),
        threads,
        seed,
        mode,
        trace,
        capture,
    )
}

/// [`run_sweep_point_traced`] with an explicit hashmap spec — the
/// fill-level axis of the sweep. The spec's population/key-space override
/// the workload's default so one document can hold latency-vs-data-size
/// curves (see [`SweepConfig::fill_levels`]).
///
/// # Panics
///
/// Same det-compatibility panic as [`run_sweep_point`].
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_point_spec_traced(
    profile: &CapacityProfile,
    lock_kind: &LockKind,
    workload: SweepWorkload,
    spec: &HashmapSpec,
    threads: usize,
    seed: u64,
    mode: &SweepMode,
    trace: &TraceConfig,
    capture: bool,
) -> (BenchPoint, Vec<ThreadTrace>) {
    assert!(
        matches!(mode, SweepMode::Wall { .. }) || lock_kind.det_compatible(),
        "{} parks on OS primitives and would deadlock the deterministic scheduler",
        lock_kind.name()
    );
    let spec = *spec;
    let scheduler = match mode {
        SweepMode::Wall { .. } => SchedulerKind::Os,
        SweepMode::Det { schedule_seed, .. } => SchedulerKind::Deterministic {
            schedule_seed: *schedule_seed,
        },
    };
    let htm = Htm::new(
        HtmConfig {
            capacity: *profile,
            max_threads: threads,
            scheduler,
            ..HtmConfig::default()
        },
        spec.cells_needed(threads),
    );
    let map = spec.build(htm.memory(), threads);
    let lock = lock_kind.build(&htm);
    let (stats, elapsed_s, traces) = match *mode {
        SweepMode::Wall { warmup, duration } => run_point_wall(
            &htm,
            lock.as_ref(),
            &map,
            &spec,
            workload,
            threads,
            seed,
            warmup,
            duration,
            trace,
            capture,
        ),
        SweepMode::Det {
            warmup_ops,
            ops_per_thread,
            ..
        } => run_point_det(
            &htm,
            lock.as_ref(),
            &map,
            &spec,
            workload,
            threads,
            seed,
            warmup_ops,
            ops_per_thread,
            trace,
            capture,
        ),
    };
    (
        BenchPoint::from_stats(
            workload.name(),
            &lock_kind.name(),
            threads,
            &stats,
            elapsed_s,
        ),
        traces,
    )
}

/// One operation of the sweep workload: a write section with the
/// workload's write-key distribution, or a read section of
/// `lookups_per_read` draws from its read-key distribution.
fn sweep_op(
    workload: SweepWorkload,
    spec: &HashmapSpec,
    threads: usize,
    lock: &dyn RwSync,
    map: &SimHashMap,
    ctx: &mut WorkerCtx<'_, '_>,
) {
    let WorkerCtx { t, rng, scratch } = ctx;
    if rng.gen_range(0..100u32) < spec.update_pct {
        let tid = t.tid();
        let key = workload.write_key(rng, tid, threads, spec.key_space);
        let insert = rng.gen_bool(0.5);
        lock.write_section(t, SEC_HASH_WRITE, &mut |a| {
            hashmap_write_cs(map, a, tid, key, insert)
        });
    } else {
        scratch.clear();
        scratch.extend((0..spec.lookups_per_read).map(|_| workload.read_key(rng, spec.key_space)));
        lock.read_section(t, SEC_HASH_READ, &mut |a| hashmap_read_cs(map, a, scratch));
    }
}

/// Wall mode: warmup seconds (stats discarded), then a measured window
/// bracketed by the coordinator on the wall clock.
#[allow(clippy::too_many_arguments)]
fn run_point_wall(
    htm: &Htm,
    lock: &dyn RwSync,
    map: &SimHashMap,
    spec: &HashmapSpec,
    workload: SweepWorkload,
    threads: usize,
    seed: u64,
    warmup: Duration,
    duration: Duration,
    trace: &TraceConfig,
    capture: bool,
) -> (SessionStats, f64, Vec<ThreadTrace>) {
    let barrier = Barrier::new(threads + 1);
    let warmed = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let mut merged = SessionStats::default();
    let mut traces = Vec::new();
    let mut elapsed_s = 0.0;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let (barrier, warmed, stop) = (&barrier, &warmed, &stop);
                s.spawn(move || {
                    let mut t = LockThread::with_trace(htm.thread(tid), *trace);
                    let mut ctx = WorkerCtx {
                        t: &mut t,
                        rng: StdRng::seed_from_u64(seed ^ ((tid as u64 + 1) << 24)),
                        scratch: Vec::with_capacity(64),
                    };
                    barrier.wait();
                    // Warmup: run until the flag flips, then drop the
                    // stats accumulated so far.
                    while !warmed.load(Ordering::Relaxed) {
                        sweep_op(workload, spec, threads, lock, map, &mut ctx);
                    }
                    ctx.t.stats = SessionStats::default();
                    while !stop.load(Ordering::Relaxed) {
                        sweep_op(workload, spec, threads, lock, map, &mut ctx);
                    }
                    t.fold_trace_counters();
                    let snap = capture.then(|| t.trace.snapshot());
                    (t.stats, snap)
                })
            })
            .collect();
        barrier.wait();
        std::thread::sleep(warmup);
        warmed.store(true, Ordering::Relaxed);
        let t0 = clock::wall_now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        // Stop the window at the flag flip, before joins (see
        // `run_generic_traced`).
        elapsed_s = (clock::wall_now() - t0) as f64 / 1e9;
        for h in handles {
            let (stats, snap) = h.join().expect("worker panicked");
            merged.merge(&stats);
            traces.extend(snap);
        }
    });
    (merged, elapsed_s.max(1e-9), traces)
}

/// Det mode: fixed warmup + measured op quotas per thread, with the
/// measured window bracketed by each worker on the virtual clock. The OS
/// barrier precedes the `ThreadCtx` claim — registration is the
/// deterministic scheduler's start barrier (see
/// [`crate::harness::run_generic_ops`]).
#[allow(clippy::too_many_arguments)]
fn run_point_det(
    htm: &Htm,
    lock: &dyn RwSync,
    map: &SimHashMap,
    spec: &HashmapSpec,
    workload: SweepWorkload,
    threads: usize,
    seed: u64,
    warmup_ops: usize,
    ops_per_thread: usize,
    trace: &TraceConfig,
    capture: bool,
) -> (SessionStats, f64, Vec<ThreadTrace>) {
    let barrier = Barrier::new(threads);
    let mut merged = SessionStats::default();
    let mut traces = Vec::new();
    let mut virt_start = u64::MAX;
    let mut virt_end = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let mut t = LockThread::with_trace(htm.thread(tid), *trace);
                    let mut ctx = WorkerCtx {
                        t: &mut t,
                        rng: StdRng::seed_from_u64(seed ^ ((tid as u64 + 1) << 24)),
                        scratch: Vec::with_capacity(64),
                    };
                    for _ in 0..warmup_ops {
                        sweep_op(workload, spec, threads, lock, map, &mut ctx);
                    }
                    ctx.t.stats = SessionStats::default();
                    let v0 = clock::now();
                    for _ in 0..ops_per_thread {
                        sweep_op(workload, spec, threads, lock, map, &mut ctx);
                    }
                    let v1 = clock::now();
                    t.fold_trace_counters();
                    let snap = capture.then(|| t.trace.snapshot());
                    (t.stats, v0, v1, snap)
                })
            })
            .collect();
        for h in handles {
            let (stats, v0, v1, snap) = h.join().expect("worker panicked");
            merged.merge(&stats);
            virt_start = virt_start.min(v0);
            virt_end = virt_end.max(v1);
            traces.extend(snap);
        }
    });
    let elapsed_s = ((virt_end.saturating_sub(virt_start)) as f64 / 1e9).max(1e-9);
    (merged, elapsed_s, traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_mode() -> SweepMode {
        SweepMode::Det {
            warmup_ops: 50,
            ops_per_thread: 300,
            schedule_seed: 7,
        }
    }

    #[test]
    fn det_sweep_points_are_bit_identical_across_runs() {
        for workload in [SweepWorkload::HotKey, SweepWorkload::ReadOnly] {
            let run = || {
                run_sweep_point(
                    &CapacityProfile::BROADWELL_SIM,
                    &LockKind::Sprwl(sprwl::SprwlConfig::default()),
                    workload,
                    2,
                    42,
                    &det_mode(),
                )
            };
            let a = run();
            let b = run();
            assert_eq!(a, b, "{workload:?} point must be deterministic");
            assert!(a.commits > 0);
        }
    }

    #[test]
    fn det_sweep_measures_the_post_warmup_window_only() {
        let p = run_sweep_point(
            &CapacityProfile::BROADWELL_SIM,
            &LockKind::Tle,
            SweepWorkload::Mixed90_10,
            2,
            42,
            &det_mode(),
        );
        // Every measured op commits exactly once eventually; warmup ops
        // must not leak into the counters.
        assert_eq!(p.commits, 2 * 300);
        assert!(p.throughput > 0.0);
        assert!(p.elapsed_s > 0.0);
    }

    #[test]
    fn wall_sweep_smoke() {
        let p = run_sweep_point(
            &CapacityProfile::BROADWELL_SIM,
            &LockKind::Rwl,
            SweepWorkload::Mixed90_10,
            2,
            42,
            &SweepMode::Wall {
                warmup: Duration::from_millis(5),
                duration: Duration::from_millis(30),
            },
        );
        assert!(p.commits > 0);
        assert!(p.throughput > 0.0);
    }

    #[test]
    fn read_only_workload_records_no_writer_latency() {
        let p = run_sweep_point(
            &CapacityProfile::BROADWELL_SIM,
            &LockKind::Tle,
            SweepWorkload::ReadOnly,
            1,
            42,
            &det_mode(),
        );
        assert_eq!(p.writer.samples, 0);
        assert!(p.reader.samples > 0);
    }

    #[test]
    fn det_sweep_skips_locks_that_park_on_os_primitives() {
        let cfg = SweepConfig {
            threads: vec![1],
            locks: vec![LockKind::Rwl, LockKind::Tle],
            workloads: vec![SweepWorkload::ReadOnly],
            mode: det_mode(),
            ..SweepConfig::default()
        };
        let r = run_sweep(&cfg, "2026-08-09", "abc1234");
        let locks: Vec<&str> = r.points.iter().map(|p| p.lock.as_str()).collect();
        assert_eq!(
            locks,
            vec!["TLE"],
            "RWL would deadlock the serialized schedule"
        );
    }

    #[test]
    #[should_panic(expected = "deadlock the deterministic scheduler")]
    fn det_point_with_an_os_blocking_lock_fails_loudly() {
        run_sweep_point(
            &CapacityProfile::BROADWELL_SIM,
            &LockKind::Rwl,
            SweepWorkload::ReadOnly,
            2,
            42,
            &det_mode(),
        );
    }

    #[test]
    fn fill_axis_tags_points_and_records_params() {
        let cfg = SweepConfig {
            threads: vec![1],
            locks: vec![LockKind::Tle],
            workloads: vec![SweepWorkload::ReadOnly],
            fill_levels: vec![1024, 4096],
            mode: SweepMode::Det {
                warmup_ops: 10,
                ops_per_thread: 60,
                schedule_seed: 7,
            },
            category: "fill".to_string(),
            ..SweepConfig::default()
        };
        let r = run_sweep(&cfg, "2026-08-09", "abc1234");
        assert_eq!(r.params["fills"], "1024,4096");
        let names: Vec<&str> = r.points.iter().map(|p| p.workload.as_str()).collect();
        assert_eq!(names, vec!["read-only#fill1024", "read-only#fill4096"]);
        assert_eq!(r.file_name(), "BENCH_fill_2026-08-09.json");
        // A fuller map means longer chains, hence more work per lookup —
        // both points must still commit all their measured ops.
        for p in &r.points {
            assert_eq!(p.commits, 60);
        }
    }

    #[test]
    fn run_sweep_covers_the_grid_and_stamps_provenance() {
        let cfg = SweepConfig {
            threads: vec![1, 2],
            locks: vec![LockKind::Tle],
            workloads: vec![SweepWorkload::ReadOnly, SweepWorkload::HotKey],
            mode: det_mode(),
            ..SweepConfig::default()
        };
        let r = run_sweep(&cfg, "2026-08-09", "abc1234");
        assert_eq!(r.points.len(), 4);
        assert_eq!(r.mode, "det");
        assert_eq!(r.capacity_profile, "broadwell-sim");
        assert_eq!(r.file_name(), "BENCH_sweep_2026-08-09.json");
        assert_eq!(r.params["schedule_seed"], "7");
        // And it round-trips through the serializer.
        let back = BenchResults::from_json(&r.to_json()).expect("parses");
        assert_eq!(r, back);
    }
}
