//! Capacity-category sweep: big-footprint writers across capacity
//! profiles, with stretching off vs on.
//!
//! Two workloads whose *writers* overflow HTM budgets — TPC-C under the
//! delivery-pressure mix ([`Mix::DELIVERY_SWEEP`]) and the sorted-list
//! range-scan ([`RangeScanSpec::capacity_sweep`]) — run over every
//! capacity profile in {broadwell-sim, power8-sim, tiny}, once with plain
//! SpRWL and once with the capacity-stretching ladder
//! ([`sprwl::StretchPolicy`]) enabled. The point of the document is the
//! before/after contrast per profile: stretching must push the writer
//! capacity-abort count down (the sticky rung stops re-probing doomed HTM
//! paths) without costing throughput, which is what `bench-compare` gates
//! in CI.
//!
//! Capacity sweeps are deterministic-only, like the server category: fixed
//! work on the serialized scheduler, measured on the virtual clock, so the
//! same flags produce a bit-identical `BENCH_capacity_<date>.json` on any
//! host. The profile is carried in each workload name
//! (`tpcc-delivery@power8-sim`) rather than the document header, since one
//! document spans all three profiles; the header uses the sentinel
//! `capacity` the way server documents use `service`.

use std::time::Duration;

use htm_sim::{clock, CapacityProfile, Htm, HtmConfig, SchedulerKind};
use rand::Rng;
use sprwl::SprwlConfig;
use sprwl_locks::SectionId;
use sprwl_trace::TraceConfig;
use sprwl_workloads::spec::TpccTxKind;
use sprwl_workloads::tpcc::{self, TpccScale};
use sprwl_workloads::{Mix, RangeScanSpec};

use crate::harness::{run_generic_ops, LockKind, RunConfig, WorkerCtx, SEC_TPCC_BASE};
use crate::results::{BenchPoint, BenchResults, Hardware, SCHEMA_MINOR, SCHEMA_VERSION};

/// Read sections of the range-scan workload.
pub const SEC_RANGE_READ: SectionId = SectionId(0);
/// Write sections of the range-scan workload (the big-footprint writer).
pub const SEC_RANGE_WRITE: SectionId = SectionId(1);

/// Grid description for one capacity sweep.
#[derive(Debug, Clone)]
pub struct CapacitySweepConfig {
    /// Capacity profiles to sweep (each becomes a `@<name>` workload
    /// suffix).
    pub profiles: Vec<CapacityProfile>,
    /// Worker threads per point.
    pub threads: usize,
    /// Workload seed (thread `i` draws from `seed ^ ((i + 1) << 24)`).
    pub seed: u64,
    /// Deterministic-scheduler seed.
    pub schedule_seed: u64,
    /// Measured operations per thread.
    pub ops_per_thread: usize,
    /// Results-document category (file name `BENCH_<category>_<date>.json`).
    pub category: String,
}

impl Default for CapacitySweepConfig {
    fn default() -> Self {
        Self {
            profiles: vec![
                CapacityProfile::BROADWELL_SIM,
                CapacityProfile::POWER8_SIM,
                CapacityProfile::TINY,
            ],
            threads: 2,
            seed: 42,
            schedule_seed: 7,
            ops_per_thread: 240,
            category: "capacity".to_string(),
        }
    }
}

/// The TPC-C scale of the capacity sweep: the district count is raised
/// past the spec's 10 so a full-work Delivery (one order per district,
/// backlog guaranteed by [`Mix::DELIVERY_SWEEP`]) overflows even POWER8's
/// 128-line write budget, and the tables are otherwise shrunk to keep
/// serialized det runs fast.
///
/// One warehouse **per thread**: the capacity sweep isolates the footprint
/// axis, and a shared warehouse drowns it — at the default scale writers
/// conflict-abort on the hot district rows long before their read/write
/// sets reach the HTM budget, so both stretch arms degenerate to the same
/// conflict-driven fallback numbers. Home-warehouse partitioning (plus
/// TPC-C's 15% remote payments for residual sharing) lets big deliveries
/// actually hit the capacity wall the sweep measures.
pub fn capacity_tpcc_scale(threads: usize) -> TpccScale {
    TpccScale {
        warehouses: threads as u32,
        districts: 16,
        customers_per_district: 48,
        items: 256,
        order_ring: 96,
        initial_orders: 24,
    }
}

/// The two stretch arms every capacity point is measured under.
fn stretch_arms() -> [(&'static str, LockKind); 2] {
    [
        ("SpRWL", LockKind::Sprwl(SprwlConfig::default())),
        ("SpRWL+stretch", LockKind::Sprwl(SprwlConfig::stretching())),
    ]
}

fn det_htm(profile: CapacityProfile, threads: usize, cells: usize, schedule_seed: u64) -> Htm {
    Htm::new(
        HtmConfig {
            capacity: profile,
            max_threads: threads,
            scheduler: SchedulerKind::Deterministic { schedule_seed },
            ..HtmConfig::default()
        },
        cells,
    )
}

fn rc(cfg: &CapacitySweepConfig) -> RunConfig {
    RunConfig {
        threads: cfg.threads,
        duration: Duration::ZERO,
        seed: cfg.seed,
    }
}

/// One TPC-C delivery-pressure point: fixed ops under the det scheduler.
fn tpcc_delivery_point(
    cfg: &CapacitySweepConfig,
    profile: CapacityProfile,
    label: &str,
    kind: &LockKind,
) -> BenchPoint {
    let scale = capacity_tpcc_scale(cfg.threads);
    let htm = det_htm(
        profile,
        cfg.threads,
        scale.cells_needed() + 64 * cfg.threads * 8,
        cfg.schedule_seed,
    );
    let lock = kind.build(&htm);
    let db = tpcc::TpccDb::new(htm.memory(), scale);
    let mix = Mix::DELIVERY_SWEEP;
    let (rep, _) = run_generic_ops(
        &htm,
        &rc(cfg),
        cfg.ops_per_thread,
        TraceConfig::Off,
        |ctx: &mut WorkerCtx<'_, '_>| {
            let rng = &mut ctx.rng;
            let w = (ctx.t.tid() as u32) % scale.warehouses;
            let kind = Mix::pick(&mix, rng.gen_range(0..100));
            let sec = SectionId(SEC_TPCC_BASE + tpcc_kind_index(kind));
            let now = clock::now();
            match kind {
                TpccTxKind::StockLevel => {
                    let inp = tpcc::gen_stock_level(rng, &scale, w);
                    lock.read_section(ctx.t, sec, &mut |a| db.stock_level(a, &inp));
                }
                TpccTxKind::OrderStatus => {
                    let inp = tpcc::gen_order_status(rng, &scale, w);
                    lock.read_section(ctx.t, sec, &mut |a| db.order_status(a, &inp));
                }
                TpccTxKind::Payment => {
                    let inp = tpcc::gen_payment(rng, &scale, w);
                    lock.write_section(ctx.t, sec, &mut |a| db.payment(a, &inp));
                }
                TpccTxKind::NewOrder => {
                    let inp = tpcc::gen_new_order(rng, &scale, w, now);
                    lock.write_section(ctx.t, sec, &mut |a| db.new_order(a, &inp));
                }
                TpccTxKind::Delivery => {
                    let inp = tpcc::gen_delivery(rng, w, now);
                    lock.write_section(ctx.t, sec, &mut |a| db.delivery(a, &inp));
                }
            }
        },
    );
    assert!(
        db.audit_ytd(htm.memory()),
        "tpcc-delivery@{} under {label}: YTD conservation broken",
        profile.name
    );
    assert!(
        db.audit_order_queues(htm.memory()),
        "tpcc-delivery@{} under {label}: order queues corrupt",
        profile.name
    );
    let elapsed = rep.virtual_elapsed_s.expect("det run");
    BenchPoint::from_stats(
        &format!("tpcc-delivery@{}", profile.name),
        label,
        cfg.threads,
        &rep.stats,
        elapsed,
    )
}

fn tpcc_kind_index(kind: TpccTxKind) -> u32 {
    match kind {
        TpccTxKind::StockLevel => 0,
        TpccTxKind::Delivery => 1,
        TpccTxKind::OrderStatus => 2,
        TpccTxKind::Payment => 3,
        TpccTxKind::NewOrder => 4,
    }
}

/// One range-scan point: long range readers, back-half range writers.
fn range_scan_point(
    cfg: &CapacitySweepConfig,
    profile: CapacityProfile,
    label: &str,
    kind: &LockKind,
) -> BenchPoint {
    let spec = RangeScanSpec::capacity_sweep();
    let htm = det_htm(
        profile,
        cfg.threads,
        spec.cells_needed(cfg.threads),
        cfg.schedule_seed,
    );
    let lock = kind.build(&htm);
    let list = spec.build(htm.memory(), cfg.threads);
    let (rep, _) = run_generic_ops(
        &htm,
        &rc(cfg),
        cfg.ops_per_thread,
        TraceConfig::Off,
        |ctx: &mut WorkerCtx<'_, '_>| {
            let rng = &mut ctx.rng;
            if rng.gen_range(0..100u32) < spec.update_pct {
                let (lo, hi) = spec.write_window(rng);
                lock.write_section(ctx.t, SEC_RANGE_WRITE, &mut |a| {
                    list.range_update(a, lo, hi, 1)
                });
            } else {
                let (lo, hi) = spec.read_window(rng);
                lock.read_section(ctx.t, SEC_RANGE_READ, &mut |a| {
                    list.range_sum(a, lo, hi).map(|(count, sum)| count ^ sum)
                });
            }
        },
    );
    // Range updates only touch values; the key structure must checksum
    // exactly as populated.
    let mut d = htm.direct(0);
    let (len, _) = list
        .checksum(&mut d)
        .expect("untracked checksum cannot abort");
    assert_eq!(
        len, spec.population,
        "range-scan@{} under {label}: list structure corrupt",
        profile.name
    );
    let elapsed = rep.virtual_elapsed_s.expect("det run");
    BenchPoint::from_stats(
        &format!("range-scan@{}", profile.name),
        label,
        cfg.threads,
        &rep.stats,
        elapsed,
    )
}

/// Runs the full (workload × profile × stretch arm) grid and assembles the
/// results document.
///
/// # Panics
///
/// Panics when a point fails its workload's own invariants (TPC-C audits,
/// list checksum) — a det point violating either is a harness bug and must
/// not produce a silently-wrong document.
pub fn run_capacity_sweep(cfg: &CapacitySweepConfig, date: &str, git_commit: &str) -> BenchResults {
    let mut points = Vec::new();
    for &profile in &cfg.profiles {
        for (label, kind) in stretch_arms() {
            points.push(tpcc_delivery_point(cfg, profile, label, &kind));
            points.push(range_scan_point(cfg, profile, label, &kind));
        }
    }

    let mut params = std::collections::BTreeMap::new();
    params.insert("seed".to_string(), cfg.seed.to_string());
    params.insert("schedule_seed".to_string(), cfg.schedule_seed.to_string());
    params.insert("ops_per_thread".to_string(), cfg.ops_per_thread.to_string());
    params.insert("threads".to_string(), cfg.threads.to_string());
    params.insert(
        "profiles".to_string(),
        cfg.profiles
            .iter()
            .map(|p| p.name)
            .collect::<Vec<_>>()
            .join(","),
    );

    BenchResults {
        schema_version: SCHEMA_VERSION,
        schema_minor: SCHEMA_MINOR,
        category: cfg.category.clone(),
        date: date.to_string(),
        git_commit: git_commit.to_string(),
        mode: "det".to_string(),
        capacity_profile: "capacity".to_string(),
        hardware: Hardware::probe(),
        params,
        points,
    }
}

/// Writer capacity-abort count of a point (plain + ROT) — the number the
/// CI gate compares between the stretch arms.
pub fn capacity_aborts(p: &BenchPoint) -> u64 {
    // AbortCause::ALL order: conflict, capacity, explicit, reader,
    // conflict-rot, capacity-rot, interrupt.
    p.aborts[1] + p.aborts[5]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CapacitySweepConfig {
        CapacitySweepConfig {
            profiles: vec![CapacityProfile::POWER8_SIM],
            threads: 2,
            ops_per_thread: 160,
            ..CapacitySweepConfig::default()
        }
    }

    #[test]
    fn grid_covers_both_workloads_and_both_arms() {
        let r = run_capacity_sweep(&tiny(), "2026-08-09", "test");
        assert_eq!(r.points.len(), 4);
        assert_eq!(r.category, "capacity");
        assert_eq!(r.capacity_profile, "capacity");
        for wl in ["tpcc-delivery@power8-sim", "range-scan@power8-sim"] {
            for lock in ["SpRWL", "SpRWL+stretch"] {
                let p = r
                    .points
                    .iter()
                    .find(|p| p.workload == wl && p.lock == lock)
                    .unwrap_or_else(|| panic!("missing point {wl}/{lock}"));
                assert!(p.commits > 0);
            }
        }
    }

    #[test]
    fn stretching_cuts_capacity_aborts_on_power8() {
        let r = run_capacity_sweep(&tiny(), "2026-08-09", "test");
        for wl in ["tpcc-delivery@power8-sim", "range-scan@power8-sim"] {
            let get = |lock: &str| {
                r.points
                    .iter()
                    .find(|p| p.workload == wl && p.lock == lock)
                    .unwrap()
            };
            let off = capacity_aborts(get("SpRWL"));
            let on = capacity_aborts(get("SpRWL+stretch"));
            assert!(
                on < off,
                "{wl}: stretching must cut writer capacity aborts ({on} !< {off})"
            );
        }
    }

    #[test]
    fn document_is_deterministic_and_round_trips() {
        let cfg = tiny();
        let a = run_capacity_sweep(&cfg, "2026-08-09", "test");
        let b = run_capacity_sweep(&cfg, "2026-08-09", "test");
        assert_eq!(a, b, "det capacity sweep must be bit-reproducible");
        let json = a.to_json();
        let back = BenchResults::from_json(&json).expect("parses");
        assert_eq!(a, back);
        assert_eq!(json, back.to_json());
        assert_eq!(back.file_name(), "BENCH_capacity_2026-08-09.json");
    }
}
