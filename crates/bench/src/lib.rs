//! # sprwl-bench — the figure-regeneration harness
//!
//! One bench target per figure of the paper's evaluation (`cargo bench -p
//! sprwl-bench --bench fig3` … `fig7`), plus an `ablation` bench for the
//! design-choice knobs DESIGN.md calls out and a `micro` criterion bench
//! for primitive costs. Each figure bench prints both a human-readable
//! table and `CSV:`-prefixed machine-readable rows.
//!
//! Environment knobs: `SPRWL_BENCH_SECS` (seconds per point, default 0.25)
//! and `SPRWL_BENCH_THREADS` (comma-separated sweep, default `1,2,4,8`).
//!
//! Beyond the figure benches, the crate carries the continuous-benchmark
//! pipeline: [`sweep`] runs thread-sweep grids (the `bench-sweep` binary),
//! [`results`] defines the schema-versioned `BENCH_<category>_<date>.json`
//! documents they emit and the regression comparison the `bench-compare`
//! binary applies between two of them.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod capacity_sweep;
pub mod harness;
pub mod results;
pub mod server_sweep;
pub mod sweep;

pub use capacity_sweep::{capacity_tpcc_scale, run_capacity_sweep, CapacitySweepConfig};
pub use harness::{
    hashmap_point, htm_for, run_generic, run_generic_traced, run_hashmap, run_hashmap_traced,
    run_tpcc, tpcc_point, trace_path_from_args, LockKind, RunConfig, RunReport, WorkerCtx,
};
pub use results::{
    compare, BenchPoint, BenchResults, CompareReport, Hardware, LatencySummary, Regression,
    ShardStat, Thresholds, SCHEMA_MINOR, SCHEMA_VERSION,
};
pub use server_sweep::{run_server_sweep, tracking_label, ServerSweepConfig};
pub use sweep::{run_sweep, run_sweep_point, SweepConfig, SweepMode};
