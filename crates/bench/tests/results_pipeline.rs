//! End-to-end tests of the perf-baseline pipeline: det sweeps must be
//! bit-identical, documents must round-trip through the hand-rolled JSON,
//! and the `bench-compare` binary must honor its exit-code contract.

use std::process::Command;

use htm_sim::CapacityProfile;
use sprwl_bench::results::today;
use sprwl_bench::sweep::{run_sweep, SweepConfig, SweepMode};
use sprwl_bench::{compare, BenchResults, LockKind, Thresholds};
use sprwl_workloads::SweepWorkload;

fn small_det_config() -> SweepConfig {
    SweepConfig {
        profile: CapacityProfile::BROADWELL_SIM,
        threads: vec![1, 2],
        seed: 42,
        mode: SweepMode::Det {
            warmup_ops: 50,
            ops_per_thread: 300,
            schedule_seed: 7,
        },
        locks: vec![
            LockKind::Sprwl(sprwl::SprwlConfig::default()),
            LockKind::Tle,
        ],
        workloads: vec![SweepWorkload::ReadOnly, SweepWorkload::Mixed90_10],
        traces: vec![("off".to_string(), sprwl_trace::TraceConfig::Off)],
        fill_levels: Vec::new(),
        category: "test".to_string(),
    }
}

#[test]
fn det_sweep_documents_are_bit_identical_across_runs() {
    let cfg = small_det_config();
    let a = run_sweep(&cfg, "2026-08-09", "pinned");
    let b = run_sweep(&cfg, "2026-08-09", "pinned");
    assert_eq!(a.points, b.points, "det sweeps must not depend on the host");
    // Identical down to the serialized bytes.
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn sweep_document_round_trips_through_json() {
    let cfg = small_det_config();
    let r = run_sweep(&cfg, "2026-08-09", "pinned");
    let parsed = BenchResults::from_json(&r.to_json()).expect("parses");
    assert_eq!(r, parsed);
    let report = compare(&r, &parsed, &Thresholds::default()).expect("comparable");
    assert_eq!(report.matched, r.points.len());
    assert!(report.regressions.is_empty());
}

fn write_doc(dir: &std::path::Path, name: &str, doc: &BenchResults) -> std::path::PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, doc.to_json()).expect("write temp doc");
    path
}

fn compare_exit(baseline: &std::path::Path, candidate: &std::path::Path) -> i32 {
    let out = Command::new(env!("CARGO_BIN_EXE_bench-compare"))
        .arg(baseline)
        .arg(candidate)
        .output()
        .expect("bench-compare runs");
    out.status.code().expect("exit code")
}

#[test]
fn bench_compare_exit_code_contract() {
    let dir = std::env::temp_dir().join(format!("sprwl-bench-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut cfg = small_det_config();
    cfg.threads = vec![1];
    cfg.workloads = vec![SweepWorkload::Mixed90_10];
    let base = run_sweep(&cfg, &today(), "base");
    let base_path = write_doc(&dir, "base.json", &base);

    // 0: self-diff is clean.
    assert_eq!(compare_exit(&base_path, &base_path), 0);

    // 1: an injected throughput regression above the threshold fails.
    let mut regressed = base.clone();
    for p in &mut regressed.points {
        p.throughput *= 0.5;
    }
    let regressed_path = write_doc(&dir, "regressed.json", &regressed);
    assert_eq!(compare_exit(&base_path, &regressed_path), 1);

    // 0: below-threshold noise passes.
    let mut noisy = base.clone();
    for p in &mut noisy.points {
        p.throughput *= 0.97;
    }
    let noisy_path = write_doc(&dir, "noisy.json", &noisy);
    assert_eq!(compare_exit(&base_path, &noisy_path), 0);

    // 2: unparseable candidate.
    let garbage_path = dir.join("garbage.json");
    std::fs::write(&garbage_path, "{not json").expect("write garbage");
    assert_eq!(compare_exit(&base_path, &garbage_path), 2);

    // 2: mode mismatch refuses to compare.
    let mut wall = base.clone();
    wall.mode = "wall".to_string();
    let wall_path = write_doc(&dir, "wall.json", &wall);
    assert_eq!(compare_exit(&base_path, &wall_path), 2);

    // 3: disjoint point sets share nothing to compare.
    let mut disjoint = base.clone();
    for p in &mut disjoint.points {
        p.lock = "OtherLock".to_string();
    }
    let disjoint_path = write_doc(&dir, "disjoint.json", &disjoint);
    assert_eq!(compare_exit(&base_path, &disjoint_path), 3);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_sweep_binary_writes_a_parsable_document() {
    let dir = std::env::temp_dir().join(format!("sprwl-sweep-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_bench-sweep"))
        .args([
            "--det",
            "--threads",
            "1",
            "--ops",
            "200",
            "--warmup-ops",
            "20",
            "--locks",
            "TLE",
            "--workloads",
            "read-only",
            "--category",
            "itest",
            "--date",
            "2026-08-09",
            "--commit",
            "itest",
            "--out",
        ])
        .arg(&dir)
        .output()
        .expect("bench-sweep runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc =
        std::fs::read_to_string(dir.join("BENCH_itest_2026-08-09.json")).expect("document written");
    let parsed = BenchResults::from_json(&doc).expect("parses");
    assert_eq!(parsed.points.len(), 1);
    assert_eq!(parsed.mode, "det");
    assert!(parsed.points[0].commits > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_sweep_binary_rejects_bad_flags() {
    for bad in [
        vec!["--locks", "NopeLock"],
        vec!["--workloads", "nope"],
        vec!["--threads", "0"],
        vec!["--fill", "0"],
        vec!["--fill", "nope"],
        vec!["--profile", "nope"],
        vec!["--frobnicate"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_bench-sweep"))
            .args(&bad)
            .output()
            .expect("bench-sweep runs");
        assert_eq!(out.status.code(), Some(2), "flags {bad:?} must be rejected");
    }
}
