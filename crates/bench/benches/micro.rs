//! Criterion micro-benchmarks of the primitives: uncontended section
//! overhead per scheme, raw HTM transaction cost, SNZI operations, and the
//! duration estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use htm_sim::{CapacityProfile, Htm, HtmConfig, TxKind};
use snzi::Snzi;
use sprwl::SpRwl;
use sprwl_locks::{
    BrLock, LockThread, PassiveRwLock, PhaseFairRwLock, PthreadRwLock, RwSync, SectionId, Tle,
};

fn htm() -> Htm {
    Htm::new(
        HtmConfig {
            capacity: CapacityProfile::BROADWELL_SIM,
            max_threads: 8,
            ..HtmConfig::default()
        },
        64 * 1024,
    )
}

fn bench_raw_htm(c: &mut Criterion) {
    let h = htm();
    let cell = h.memory().alloc(1).cell(0);
    let mut ctx = h.thread(0);
    c.bench_function("htm/txn-1r1w", |b| {
        b.iter(|| {
            ctx.txn(TxKind::Htm, |tx| {
                let v = tx.read(cell)?;
                tx.write(cell, v + 1)
            })
            .unwrap()
        })
    });
    let d = h.direct(1);
    c.bench_function("htm/untracked-load", |b| b.iter(|| d.load(cell)));
    c.bench_function("htm/untracked-store", |b| b.iter(|| d.store(cell, 1)));
    c.bench_function("htm/peek", |b| b.iter(|| h.memory().peek(cell)));
}

fn bench_sections(c: &mut Criterion) {
    let h = htm();
    let cell = h.memory().alloc(1).cell(0);
    let mut group = c.benchmark_group("uncontended-write-section");
    let locks: Vec<(&str, Box<dyn RwSync>)> = vec![
        ("SpRWL", Box::new(SpRwl::with_defaults(&h))),
        ("TLE", Box::new(Tle::new(&h))),
        ("RWL", Box::new(PthreadRwLock::new())),
        ("BRLock", Box::new(BrLock::new(8))),
        ("PF-RWL", Box::new(PhaseFairRwLock::new())),
        ("PRWL", Box::new(PassiveRwLock::new(8))),
    ];
    for (name, lock) in &locks {
        let mut t = LockThread::new(h.thread(0));
        group.bench_function(name, |b| {
            b.iter(|| {
                lock.write_section(&mut t, SectionId(0), &mut |a| {
                    let v = a.read(cell)?;
                    a.write(cell, v + 1)?;
                    Ok(v)
                })
            })
        });
        drop(t);
    }
    group.finish();

    let mut group = c.benchmark_group("uncontended-read-section");
    for (name, lock) in &locks {
        let mut t = LockThread::new(h.thread(0));
        group.bench_function(name, |b| {
            b.iter(|| lock.read_section(&mut t, SectionId(1), &mut |a| a.read(cell)))
        });
        drop(t);
    }
    group.finish();
}

fn bench_snzi(c: &mut Criterion) {
    let h = htm();
    let snzi = Snzi::new(h.memory(), 8);
    let d = h.direct(0);
    c.bench_function("snzi/arrive-depart", |b| {
        b.iter(|| {
            snzi.arrive(&d, 3);
            snzi.depart(&d, 3);
        })
    });
    snzi.arrive(&d, 1); // keep the tree warm: re-arrivals stay leaf-local
    c.bench_function("snzi/arrive-depart-warm", |b| {
        b.iter(|| {
            snzi.arrive(&d, 1);
            snzi.depart(&d, 1);
        })
    });
    c.bench_function("snzi/query", |b| b.iter(|| snzi.query_untracked(&d)));
}

/// The zero-cost-when-off claim, measured: the same uncontended SpRWL
/// sections with tracing disabled (`LockThread::new`), with a live ring
/// (`with_trace`), and the raw push cost. The "off" and plain-`new`
/// numbers must stay within noise of each other.
fn bench_trace_overhead(c: &mut Criterion) {
    use sprwl_trace::{EventKind, TraceBuffer, TraceConfig};
    let h = htm();
    let cell = h.memory().alloc(1).cell(0);
    let lock = SpRwl::with_defaults(&h);
    let mut group = c.benchmark_group("trace-overhead/read-section");
    {
        let mut t = LockThread::new(h.thread(0));
        group.bench_function("off", |b| {
            b.iter(|| lock.read_section(&mut t, SectionId(1), &mut |a| a.read(cell)))
        });
    }
    {
        let mut t = LockThread::with_trace(h.thread(0), TraceConfig::ring(4096));
        group.bench_function("ring-4096", |b| {
            b.iter(|| lock.read_section(&mut t, SectionId(1), &mut |a| a.read(cell)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("trace-overhead/push");
    let mut off = TraceBuffer::disabled(0);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            off.push(EventKind::ReaderArrive);
        })
    });
    let mut on = TraceBuffer::new(0, TraceConfig::ring(4096));
    group.bench_function("ring", |b| {
        b.iter(|| {
            on.push(EventKind::ReaderArrive);
        })
    });
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let est = sprwl::DurationEstimator::new(8, false);
    c.bench_function("estimator/record", |b| {
        b.iter(|| est.record(0, SectionId(2), 1234))
    });
    c.bench_function("estimator/end-time", |b| {
        b.iter(|| est.end_time(SectionId(2)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(400)).warm_up_time(std::time::Duration::from_millis(150));
    targets = bench_raw_htm, bench_sections, bench_snzi, bench_trace_overhead, bench_estimator
}
criterion_main!(benches);
