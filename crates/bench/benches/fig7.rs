//! Figure 7: TPC-C with the paper's mix (Stock-Level 31 %, Delivery 4 %,
//! Order-Status 4 %, Payment 43 %, New-Order 18 %; ≈35 % read-only),
//! warehouses = max threads, on both capacity profiles. Expected shape:
//! SpRWL commits most update transactions in HTM while running the long
//! Stock-Level readers uninstrumented; TLE loses its readers to the global
//! lock; RW-LE (POWER8 only) commits updates as HTM/ROTs but pays
//! quiescence-inflated writer latency; the SNZI variant helps on POWER8.

use htm_sim::CapacityProfile;
use sprwl::SprwlConfig;
use sprwl_bench::{run_tpcc, tpcc_point, LockKind, RunConfig, RunReport};
use sprwl_workloads::tpcc::TpccScale;
use sprwl_workloads::Mix;

fn main() {
    let duration = RunConfig::bench_duration();
    let threads = RunConfig::bench_threads();
    let max_threads = *threads.iter().max().unwrap_or(&8);
    for profile in [CapacityProfile::BROADWELL_SIM, CapacityProfile::POWER8_SIM] {
        println!(
            "\n=== Fig 7 [{}] TPC-C paper mix, {} warehouses ===",
            profile.name, max_threads
        );
        println!("{}", RunReport::header());
        let mut kinds = LockKind::paper_set(&profile);
        kinds.push(LockKind::Sprwl(SprwlConfig::with_snzi()));
        for kind in kinds {
            for &n in &threads {
                let scale = TpccScale::with_warehouses(max_threads as u32);
                let (htm, lock, db) = tpcc_point(profile, scale, &kind, n);
                let rep = run_tpcc(
                    &htm,
                    &*lock,
                    &db,
                    &Mix::PAPER,
                    &RunConfig {
                        threads: n,
                        duration,
                        seed: 46,
                    },
                )
                .with_lock_name(kind.name());
                println!("{}", rep.row());
                println!("CSV:fig7,{},mix,{}", profile.name, rep.csv());
                assert!(
                    db.audit_ytd(htm.memory()),
                    "TPC-C YTD consistency violated under {}",
                    kind.name()
                );
                assert!(db.audit_order_queues(htm.memory()));
            }
        }
    }
}
