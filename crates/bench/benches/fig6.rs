//! Figure 6: the reader-tracking ablation — per-thread flags vs SNZI —
//! at 50 % updates on the POWER8-like profile, sweeping the reader size
//! (lookups per read critical section). Expected shape: SNZI loses for
//! short readers (its O(log n) arrive/depart overhead dominates) and wins
//! for long readers (the writer's commit-time check reads one line instead
//! of one per thread, shrinking its footprint and its abort window).

use htm_sim::CapacityProfile;
use sprwl::SprwlConfig;
use sprwl_bench::{hashmap_point, run_hashmap, LockKind, RunConfig, RunReport};
use sprwl_workloads::HashmapSpec;

fn main() {
    let duration = RunConfig::bench_duration();
    let threads = *RunConfig::bench_threads().last().unwrap_or(&8);
    let profile = CapacityProfile::POWER8_SIM;

    println!(
        "\n=== Fig 6 [{}] SNZI vs flags: 50% updates, {} threads, reader size sweep ===",
        profile.name, threads
    );
    println!("reader_lookups  {}", RunReport::header());
    for lookups in [1usize, 2, 5, 10, 25, 50] {
        let spec = HashmapSpec {
            lookups_per_read: lookups,
            ..HashmapSpec::paper(&profile, true, 50)
        };
        for kind in [
            LockKind::Sprwl(SprwlConfig::full()),
            LockKind::Sprwl(SprwlConfig::with_snzi()),
            // §5 future work, implemented: self-tuning tracking should hug
            // whichever static line wins at each reader size.
            LockKind::Sprwl(SprwlConfig::adaptive()),
        ] {
            let (htm, lock, map) = hashmap_point(profile, &spec, &kind, threads);
            let rep = run_hashmap(
                &htm,
                &*lock,
                &map,
                &spec,
                &RunConfig {
                    threads,
                    duration,
                    seed: 45,
                },
            )
            .with_lock_name(kind.name());
            println!("{:>14}  {}", lookups, rep.row());
            println!("CSV:fig6,{},{},{}", profile.name, lookups, rep.csv());
        }
    }
}
