//! Figure 4: hashmap, readers execute a single lookup (fitting in HTM) —
//! the unfavourable workload for SpRWL. Expected shape: TLE leads (its
//! readers elide in HTM with no SpRWL bookkeeping); SpRWL stays within
//! tens of percent thanks to the readers-try-HTM-first optimization
//! (§3.4), committing nearly everything in HTM at low thread counts.

use htm_sim::CapacityProfile;
use sprwl_bench::{hashmap_point, run_hashmap, LockKind, RunConfig, RunReport};
use sprwl_workloads::HashmapSpec;

fn main() {
    let duration = RunConfig::bench_duration();
    let threads = RunConfig::bench_threads();
    for profile in [CapacityProfile::BROADWELL_SIM, CapacityProfile::POWER8_SIM] {
        for upd in [10u32, 50, 90] {
            println!(
                "\n=== Fig 4 [{}] hashmap: 1-lookup readers, {upd}% updates ===",
                profile.name
            );
            println!("{}", RunReport::header());
            let spec = HashmapSpec::paper(&profile, false, upd);
            for kind in LockKind::paper_set(&profile) {
                for &n in &threads {
                    let (htm, lock, map) = hashmap_point(profile, &spec, &kind, n);
                    let rep = run_hashmap(
                        &htm,
                        &*lock,
                        &map,
                        &spec,
                        &RunConfig {
                            threads: n,
                            duration,
                            seed: 43,
                        },
                    )
                    .with_lock_name(kind.name());
                    println!("{}", rep.row());
                    println!("CSV:fig4,{},{},{}", profile.name, upd, rep.csv());
                }
            }
        }
    }
}
