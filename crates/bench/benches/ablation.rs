//! Ablations for the design choices DESIGN.md §7 calls out, beyond the
//! paper's own Fig. 5/6 studies:
//!
//! 1. δ (writer-synchronization slack): 0 vs half-writer-duration vs fixed.
//! 2. Readers-try-HTM-first: on vs off, for short and long readers.
//! 3. Versioned SGL (reader anti-starvation): on vs off.
//! 4. HTM conflict policy: requester-wins vs responder-wins.
//! 5. Duration sampling: thread 0 only vs all threads.

use htm_sim::{CapacityProfile, ConflictPolicy, Htm, HtmConfig};
use sprwl::{DeltaPolicy, SpRwl, SprwlConfig};
use sprwl_bench::{hashmap_point, run_hashmap, LockKind, RunConfig, RunReport};
use sprwl_workloads::HashmapSpec;

fn point(profile: CapacityProfile, spec: &HashmapSpec, cfg: SprwlConfig, label: &str, n: usize) {
    let kind = LockKind::Sprwl(cfg);
    let (htm, lock, map) = hashmap_point(profile, spec, &kind, n);
    let rep = run_hashmap(
        &htm,
        &*lock,
        &map,
        spec,
        &RunConfig {
            threads: n,
            duration: RunConfig::bench_duration(),
            seed: 47,
        },
    )
    .with_lock_name(label.to_string());
    println!("{}", rep.row());
    println!("CSV:ablation,{},{}", label.replace(' ', "_"), rep.csv());
}

fn main() {
    let threads = *RunConfig::bench_threads().last().unwrap_or(&8);
    let profile = CapacityProfile::BROADWELL_SIM;
    let long = HashmapSpec::paper(&profile, true, 10);
    let short = HashmapSpec::paper(&profile, false, 10);

    println!("\n=== Ablation 1: δ policy (long readers, 10% upd, {threads} thr) ===");
    println!("{}", RunReport::header());
    for (delta, label) in [
        (DeltaPolicy::Zero, "delta=0"),
        (DeltaPolicy::HalfWriterDuration, "delta=w/2"),
        (DeltaPolicy::FixedNs(50_000), "delta=50us"),
    ] {
        point(
            profile,
            &long,
            SprwlConfig {
                delta,
                ..SprwlConfig::default()
            },
            label,
            threads,
        );
    }

    println!("\n=== Ablation 2: readers-try-HTM-first (off / adaptive / always) ===");
    println!("{}", RunReport::header());
    for (spec, sl) in [(&long, "long"), (&short, "short")] {
        for (try_htm, adaptive, ol) in [
            (false, false, "direct"),
            (true, true, "adaptive"),
            (true, false, "always"),
        ] {
            point(
                profile,
                spec,
                SprwlConfig {
                    readers_try_htm: try_htm,
                    adaptive_reader_htm: adaptive,
                    ..SprwlConfig::default()
                },
                &format!("{sl}-{ol}"),
                threads,
            );
        }
    }

    println!("\n=== Ablation 3: versioned SGL ===");
    println!("{}", RunReport::header());
    for (on, label) in [(false, "plain-sgl"), (true, "versioned-sgl")] {
        point(
            profile,
            &long,
            SprwlConfig {
                versioned_sgl: on,
                ..SprwlConfig::default()
            },
            label,
            threads,
        );
    }

    println!("\n=== Ablation 4: HTM conflict policy (substrate knob) ===");
    println!("{}", RunReport::header());
    for (policy, label) in [
        (ConflictPolicy::RequesterWins, "requester-wins"),
        (ConflictPolicy::ResponderWins, "responder-wins"),
    ] {
        let htm = Htm::new(
            HtmConfig {
                capacity: profile,
                max_threads: threads,
                conflict_policy: policy,
                ..HtmConfig::default()
            },
            long.cells_needed(threads) + 4096,
        );
        let lock = SpRwl::with_defaults(&htm);
        let map = long.build(htm.memory(), threads);
        let rep = run_hashmap(
            &htm,
            &lock,
            &map,
            &long,
            &RunConfig {
                threads,
                duration: RunConfig::bench_duration(),
                seed: 48,
            },
        )
        .with_lock_name(label.to_string());
        println!("{}", rep.row());
        println!("CSV:ablation,{label},{}", rep.csv());
    }

    println!("\n=== Ablation 5: duration sampling thread-0 vs all threads ===");
    println!("{}", RunReport::header());
    for (all, label) in [(false, "sample-t0"), (true, "sample-all")] {
        point(
            profile,
            &long,
            SprwlConfig {
                sample_all_threads: all,
                ..SprwlConfig::default()
            },
            label,
            threads,
        );
    }

    println!("\n=== Ablation 6: timed reader waits (§3.4) ===");
    println!("{}", RunReport::header());
    for (on, label) in [(false, "poll-wait"), (true, "timed-wait")] {
        point(
            profile,
            &long,
            SprwlConfig {
                timed_reader_wait: on,
                ..SprwlConfig::default()
            },
            label,
            threads,
        );
    }
}
