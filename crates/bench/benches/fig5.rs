//! Figure 5: the scheduling ablation — NoSched / RWait / RSync / full
//! SpRWL (plus TLE for reference) on the Broadwell-like profile, 10 %
//! updates, 10-lookup readers. Expected shape: reader-induced writer
//! aborts (`rdr` column) shrink monotonically NoSched → RWait → RSync →
//! SpRWL, writer latency drops, and throughput orders the same way at
//! high thread counts.

use htm_sim::CapacityProfile;
use sprwl::SprwlConfig;
use sprwl_bench::{hashmap_point, run_hashmap, LockKind, RunConfig, RunReport};
use sprwl_workloads::HashmapSpec;

fn main() {
    let duration = RunConfig::bench_duration();
    let threads = RunConfig::bench_threads();
    let profile = CapacityProfile::BROADWELL_SIM;
    let spec = HashmapSpec::paper(&profile, true, 10);

    // The §4.1.1 variants; TLE is the reference line of the plot.
    let variants: Vec<LockKind> = vec![
        LockKind::Tle,
        LockKind::Sprwl(SprwlConfig::no_sched()),
        LockKind::Sprwl(SprwlConfig::rwait()),
        LockKind::Sprwl(SprwlConfig::rsync()),
        LockKind::Sprwl(SprwlConfig::full()),
    ];

    println!(
        "\n=== Fig 5 [{}] scheduling ablation: 10-lookup readers, 10% updates ===",
        profile.name
    );
    println!("{}", RunReport::header());
    for kind in &variants {
        for &n in &threads {
            let (htm, lock, map) = hashmap_point(profile, &spec, kind, n);
            let rep = run_hashmap(
                &htm,
                &*lock,
                &map,
                &spec,
                &RunConfig {
                    threads: n,
                    duration,
                    seed: 44,
                },
            )
            .with_lock_name(kind.name());
            println!("{}", rep.row());
            println!("CSV:fig5,{},10,{}", profile.name, rep.csv());
        }
    }
}
