//! Figure 3: hashmap, readers execute 10 lookups (overflowing HTM
//! capacity), writers 1 insert/delete; 10/50/90 % updates; thread sweep on
//! both capacity profiles. Expected shape: TLE collapses onto the global
//! lock (capacity aborts), pessimistic locks stay flat, SpRWL commits its
//! readers uninstrumented and leads — by the largest factor in the
//! read-dominated (10 %) mix.
//!
//! Pass `--trace <path>` (after `--`) to additionally capture a
//! Perfetto-loadable Chrome trace of the last SpRWL point plus a
//! conflict-attribution summary.

use htm_sim::CapacityProfile;
use sprwl_bench::{
    hashmap_point, run_hashmap_traced, trace_path_from_args, LockKind, RunConfig, RunReport,
};
use sprwl_trace::{export, TraceConfig};
use sprwl_workloads::HashmapSpec;

fn main() {
    let duration = RunConfig::bench_duration();
    let threads = RunConfig::bench_threads();
    let trace_path = trace_path_from_args();
    let mut last_sprwl_trace = None;
    for profile in [CapacityProfile::BROADWELL_SIM, CapacityProfile::POWER8_SIM] {
        for upd in [10u32, 50, 90] {
            println!(
                "\n=== Fig 3 [{}] hashmap: 10-lookup readers, {upd}% updates ===",
                profile.name
            );
            println!("{}", RunReport::header());
            let spec = HashmapSpec::paper(&profile, true, upd);
            for kind in LockKind::paper_set(&profile) {
                let is_sprwl = matches!(kind, LockKind::Sprwl(_));
                for &n in &threads {
                    // Trace only SpRWL points (the instrumented scheme);
                    // ring of 64 Ki events per thread keeps the tail.
                    let trace_cfg = if trace_path.is_some() && is_sprwl {
                        TraceConfig::ring(64 * 1024)
                    } else {
                        TraceConfig::Off
                    };
                    let (htm, lock, map) = hashmap_point(profile, &spec, &kind, n);
                    let (rep, traces) = run_hashmap_traced(
                        &htm,
                        &*lock,
                        &map,
                        &spec,
                        &RunConfig {
                            threads: n,
                            duration,
                            seed: 42,
                        },
                        trace_cfg,
                    );
                    let rep = rep.with_lock_name(kind.name());
                    println!("{}", rep.row());
                    println!("CSV:fig3,{},{},{}", profile.name, upd, rep.csv());
                    if trace_cfg.is_on() {
                        if let Some(summary) = rep.conflict_summary(5) {
                            println!("  conflicts: {summary}");
                        }
                        last_sprwl_trace = Some(traces);
                    }
                }
            }
        }
    }
    if let (Some(path), Some(traces)) = (trace_path, last_sprwl_trace) {
        export::write_chrome_file(&path, &traces).expect("writing trace file");
        println!(
            "\ntrace: wrote Chrome trace (last SpRWL point) to {}",
            path.display()
        );
    }
}
