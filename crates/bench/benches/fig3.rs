//! Figure 3: hashmap, readers execute 10 lookups (overflowing HTM
//! capacity), writers 1 insert/delete; 10/50/90 % updates; thread sweep on
//! both capacity profiles. Expected shape: TLE collapses onto the global
//! lock (capacity aborts), pessimistic locks stay flat, SpRWL commits its
//! readers uninstrumented and leads — by the largest factor in the
//! read-dominated (10 %) mix.

use htm_sim::CapacityProfile;
use sprwl_bench::{hashmap_point, run_hashmap, LockKind, RunConfig, RunReport};
use sprwl_workloads::HashmapSpec;

fn main() {
    let duration = RunConfig::bench_duration();
    let threads = RunConfig::bench_threads();
    for profile in [CapacityProfile::BROADWELL_SIM, CapacityProfile::POWER8_SIM] {
        for upd in [10u32, 50, 90] {
            println!(
                "\n=== Fig 3 [{}] hashmap: 10-lookup readers, {upd}% updates ===",
                profile.name
            );
            println!("{}", RunReport::header());
            let spec = HashmapSpec::paper(&profile, true, upd);
            for kind in LockKind::paper_set(&profile) {
                for &n in &threads {
                    let (htm, lock, map) = hashmap_point(profile, &spec, &kind, n);
                    let rep = run_hashmap(
                        &htm,
                        &*lock,
                        &map,
                        &spec,
                        &RunConfig {
                            threads: n,
                            duration,
                            seed: 42,
                        },
                    )
                    .with_lock_name(kind.name());
                    println!("{}", rep.row());
                    println!("CSV:fig3,{},{},{}", profile.name, upd, rep.csv());
                }
            }
        }
    }
}
