//! Unit tests for the harness's replay plumbing: `first_divergence` (the
//! line-level diff behind every determinism failure message) and
//! `CaseArtifacts` (the raw remains a run leaves behind, and the JSONL
//! export `scripts/diff_traces.py` consumes).

use htm_sim::{HtmConfig, SchedulerKind};
use sprwl::SprwlConfig;
use sprwl_torture::{
    first_divergence, run_case_artifacts, LincheckStatus, LockKind, TortureSpec, Workload,
};

#[test]
fn identical_texts_have_no_divergence() {
    assert_eq!(first_divergence("", ""), None);
    assert_eq!(first_divergence("a\nb\nc", "a\nb\nc"), None);
}

#[test]
fn single_line_mutation_is_located_exactly() {
    let a = "alpha\nbeta\ngamma\ndelta";
    let b = "alpha\nbeta\nGAMMA\ndelta";
    assert_eq!(
        first_divergence(a, b),
        Some((3, "gamma".to_string(), "GAMMA".to_string()))
    );
}

#[test]
fn truncation_diverges_at_the_missing_line() {
    let a = "alpha\nbeta\ngamma";
    let b = "alpha\nbeta";
    let (line, la, lb) = first_divergence(a, b).expect("must diverge");
    assert_eq!(line, 3);
    assert_eq!(la, "gamma");
    assert_eq!(lb, "<end of trace>");
    // Symmetric on the other side.
    let (_, la, lb) = first_divergence(b, a).expect("must diverge");
    assert_eq!((la.as_str(), lb.as_str()), ("<end of trace>", "gamma"));
}

fn small_det_spec() -> TortureSpec {
    TortureSpec {
        name: "artifacts-smoke".into(),
        lock: LockKind::Sprwl(SprwlConfig::default()),
        htm: HtmConfig {
            scheduler: SchedulerKind::Deterministic {
                schedule_seed: 0xA7F1,
            },
            ..HtmConfig::default()
        },
        threads: 2,
        ops_per_thread: 20,
        pairs: 2,
        write_pct: 50,
        reader_span: 2,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: true,
        churn: false,
    }
}

#[test]
fn artifacts_expose_the_full_run() {
    let art = run_case_artifacts(&small_det_spec(), 5);
    let summary = art.outcome.as_ref().expect("green run");
    assert_eq!(summary.lincheck, LincheckStatus::Linearizable);
    assert_eq!(art.sched_seed, Some(0xA7F1));
    assert_eq!(art.traces.len(), 2);
    assert_eq!(art.stats.len(), 2);
    assert_eq!(art.pairs_final.len(), 2);
    // Mirror invariant holds in the exposed memory snapshot too.
    for (a, b) in &art.pairs_final {
        assert_eq!(a, b, "mirror pair torn in pairs_final");
    }
    assert_eq!(
        summary.final_increments,
        art.pairs_final.iter().map(|(a, _)| a).sum::<u64>()
    );
}

#[test]
fn trace_jsonl_is_one_valid_object_per_event_in_tid_order() {
    let art = run_case_artifacts(&small_det_spec(), 5);
    let jsonl = art.trace_jsonl();
    assert!(!jsonl.is_empty());
    let mut tids = Vec::new();
    for line in jsonl.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        assert!(line.contains("\"tid\":"), "line lacks a tid: {line}");
        if let Some(rest) = line.split("\"tid\":").nth(1) {
            let tid: u64 = rest
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .unwrap()
                .parse()
                .unwrap();
            tids.push(tid);
        }
    }
    // Events are grouped per thread, tids ascending across the dump.
    let mut deduped = tids.clone();
    deduped.dedup();
    assert_eq!(deduped, vec![0, 1], "per-thread grouping in tid order");

    // The dump is what the determinism diff runs on: a replay must match.
    let again = run_case_artifacts(&small_det_spec(), 5).trace_jsonl();
    assert_eq!(first_divergence(&jsonl, &again), None);
}
