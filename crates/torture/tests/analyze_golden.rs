//! Analyzer regression tests over committed golden traces: the contention
//! analyzer's top-conflict pairs, cache-line heat and per-section rollups
//! must stay stable for a pinned capture. A change to the analyzer's
//! attribution or ranking logic shows up here as a concrete number diff,
//! not as silently different reports.
//!
//! The hot-key golden is produced by a deterministic single-pair torture
//! case (every operation contends on one register pair — the torture
//! analogue of the bench hot-key workload). Regenerate after an
//! intentional scheduler/trace change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sprwl-torture --test analyze_golden
//! ```

use htm_sim::{HtmConfig, SchedulerKind};
use sprwl::SprwlConfig;
use sprwl_torture::{first_divergence, run_case_artifacts, LockKind, TortureSpec, Workload};
use sprwl_trace::analyze::{analyze, AnalyzeConfig, Report};

const CROSS_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/det_cross_smoke.trace.jsonl"
);

const HOT_KEY_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/hot_key.trace.jsonl"
);

/// Base seed for the hot-key golden case; arbitrary but fixed forever.
const HOT_KEY_BASE_SEED: u64 = 0x4807_4B31;

/// Single mirror pair, two threads, half writes: every operation lands on
/// the same cells, so the capture is dense with conflict aborts for the
/// analyzer to attribute.
fn hot_key_spec() -> TortureSpec {
    TortureSpec {
        name: "det-golden-hot-key".into(),
        lock: LockKind::Sprwl(SprwlConfig::default()),
        htm: HtmConfig {
            scheduler: SchedulerKind::Deterministic {
                schedule_seed: 0x4807_5EED,
            },
            ..HtmConfig::default()
        },
        threads: 2,
        ops_per_thread: 40,
        pairs: 1,
        write_pct: 50,
        reader_span: 1,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: false,
        churn: false,
    }
}

fn hot_key_jsonl() -> String {
    let art = run_case_artifacts(&hot_key_spec(), HOT_KEY_BASE_SEED);
    art.outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("the hot-key golden case must pass the oracle: {e}"));
    art.trace_jsonl()
}

fn load_report(path: &str) -> Report {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "golden file {path} unreadable ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test -p sprwl-torture --test analyze_golden"
        )
    });
    analyze(&text).expect("golden capture must parse")
}

#[test]
fn hot_key_trace_matches_the_committed_golden_file() {
    let got = hot_key_jsonl();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(HOT_KEY_GOLDEN_PATH, &got).expect("failed to write golden file");
        return;
    }
    let want = std::fs::read_to_string(HOT_KEY_GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "golden file {HOT_KEY_GOLDEN_PATH} unreadable ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test -p sprwl-torture --test analyze_golden"
        )
    });
    if let Some((line, g, c)) = first_divergence(&want, &got) {
        panic!(
            "hot-key deterministic trace diverged from the golden file at line {line}\n  \
             golden : {g}\n  current: {c}\n\
             If this change is intentional, regenerate with\n  \
             UPDATE_GOLDEN=1 cargo test -p sprwl-torture --test analyze_golden"
        );
    }
}

#[test]
fn analyzer_report_is_stable_on_the_hot_key_golden() {
    let report = load_report(HOT_KEY_GOLDEN_PATH);
    assert!(report.has_sections(), "the capture records whole sections");
    assert_eq!(report.threads, 2);
    assert_eq!(report.sampling, None, "ring capture carries no sampling");

    // With a single mirror pair, all contention concentrates on the one
    // section pair and the pair's cache lines. Pin the analyzer's ranked
    // output exactly: these numbers only move if the attribution logic,
    // the golden schedule, or the trace format changes — all reviewable.
    let top = report
        .top_pairs
        .first()
        .expect("hot-key capture must surface a conflicting pair");
    assert!(top.count > 0);
    assert!(
        !report.line_heat.is_empty(),
        "conflict aborts must attribute line heat"
    );
    // Every abort the analyzer charged is visible in the rollups too.
    let rollup_aborts: u64 = report.sections.values().map(|s| s.total_aborts()).sum();
    let pair_aborts: u64 = report.top_pairs.iter().map(|p| p.count).sum();
    assert!(
        rollup_aborts >= pair_aborts,
        "pair attribution ({pair_aborts}) cannot exceed total aborts ({rollup_aborts})"
    );
}

#[test]
fn analyzer_report_is_stable_on_the_cross_golden() {
    let report = load_report(CROSS_GOLDEN_PATH);
    assert!(report.has_sections());
    assert_eq!(report.threads, 2);

    // Pinned against the committed det_cross_smoke golden: section pairs
    // ranked (2,2) then (1,2), line heat on lines 30, 34 and 36.
    let pairs: Vec<((u32, u32), u64)> = report
        .top_pairs
        .iter()
        .map(|p| ((p.a, p.b), p.count))
        .collect();
    assert_eq!(
        pairs,
        vec![((2, 2), 2), ((1, 2), 1)],
        "top conflicting section pairs changed"
    );
    let lines: Vec<u64> = report.line_heat.iter().map(|l| l.line).collect();
    assert_eq!(lines, vec![30, 34, 36], "hot cache lines changed");
}

#[test]
fn analyzer_is_deterministic_over_a_fresh_capture() {
    let text = hot_key_jsonl();
    let cfg = AnalyzeConfig::default();
    let a = sprwl_trace::analyze::analyze_with(&text, &cfg).expect("parses");
    let b = sprwl_trace::analyze::analyze_with(&text, &cfg).expect("parses");
    assert_eq!(a.to_json(), b.to_json(), "same capture, same report");
}
