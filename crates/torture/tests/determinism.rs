//! The bit-exactness contract of the deterministic scheduler, enforced
//! end to end through the torture harness: the same `(base seed, spec,
//! schedule seed)` triple must reproduce the *entire* run — per-thread
//! event traces byte for byte, session statistics, final memory, and the
//! oracle's verdict.
//!
//! These tests never mutate process environment variables (the test
//! binary runs its cases in parallel threads); schedule seeds are pinned
//! through [`TortureSpec::htm`]'s `SchedulerKind::Deterministic` instead,
//! which `resolve_case` honours when nonzero.

use htm_sim::{HtmConfig, SchedulerKind};
use sprwl::SprwlConfig;
use sprwl_torture::{
    det_matrix, first_divergence, run_case_artifacts, LockKind, TortureSpec, Workload, DEFAULT_SEED,
};

/// Asserts that two executions of `spec` under `base_seed` left identical
/// remains, with a first-divergence diagnosis on trace mismatch.
fn assert_bit_identical(spec: &TortureSpec, base_seed: u64) {
    let a = run_case_artifacts(spec, base_seed);
    let b = run_case_artifacts(spec, base_seed);
    assert_eq!(
        a.sched_seed, b.sched_seed,
        "{}: schedule-seed resolution must be stable",
        spec.name
    );
    assert!(
        a.sched_seed.is_some(),
        "{}: deterministic case must resolve a schedule seed",
        spec.name
    );

    let (ja, jb) = (a.trace_jsonl(), b.trace_jsonl());
    if let Some((line, la, lb)) = first_divergence(&ja, &jb) {
        panic!(
            "{}: traces diverged at line {line}\n  first : {la}\n  second: {lb}\n  \
             (compare full dumps with scripts/diff_traces.py)",
            spec.name
        );
    }
    assert_eq!(a.stats, b.stats, "{}: session stats diverged", spec.name);
    assert_eq!(
        a.pairs_final, b.pairs_final,
        "{}: final memory diverged",
        spec.name
    );
    assert_eq!(
        a.outcome, b.outcome,
        "{}: oracle verdict diverged",
        spec.name
    );
}

#[test]
fn every_det_case_replays_bit_identically() {
    // The full deterministic matrix, twice per case, under two base seeds:
    // the property the whole substrate refactor exists to provide. Churn
    // cases are excluded — a deregistered thread's re-registration lands
    // wherever the OS schedules it, so their interleavings are serialized
    // but not seed-addressed (see `det_churn_cases_pass_every_invariant`).
    for base_seed in [DEFAULT_SEED, 0x5EED_0002] {
        for spec in det_matrix(3, 40) {
            if spec.churn {
                continue;
            }
            assert_bit_identical(&spec, base_seed);
        }
    }
}

#[test]
fn det_churn_cases_pass_every_invariant() {
    // Mid-case register/run/deregister under the serialized scheduler:
    // the oracle (mirror pairs, quiescence including released slots,
    // stats accounting, linearizability) must hold across the context
    // swap, for every seed, even though the interleaving is not
    // replayable bit for bit.
    let churn: Vec<_> = det_matrix(3, 40).into_iter().filter(|s| s.churn).collect();
    assert!(!churn.is_empty(), "det matrix lost its churn cases");
    for base_seed in [DEFAULT_SEED, 0x5EED_0002] {
        for spec in &churn {
            let art = run_case_artifacts(spec, base_seed);
            let summary = art
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(
                summary.reader_commits + summary.writer_commits,
                3 * 40,
                "{}: every issued section commits exactly once",
                spec.name
            );
        }
    }
}

/// A writer-heavy SpRWL case with the schedule seed pinned in the spec.
fn pinned_spec(schedule_seed: u64) -> TortureSpec {
    TortureSpec {
        name: "det-pinned".into(),
        lock: LockKind::Sprwl(SprwlConfig::default()),
        htm: HtmConfig {
            scheduler: SchedulerKind::Deterministic { schedule_seed },
            ..HtmConfig::default()
        },
        threads: 3,
        ops_per_thread: 60,
        pairs: 4,
        write_pct: 60,
        reader_span: 4,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: true,
        churn: false,
    }
}

#[test]
fn pinned_schedule_seeds_are_honoured_and_reproducible() {
    let spec = pinned_spec(0xC0FFEE);
    let a = run_case_artifacts(&spec, 7);
    assert_eq!(
        a.sched_seed,
        Some(0xC0FFEE),
        "a nonzero spec seed pins the schedule"
    );
    assert_bit_identical(&spec, 7);
}

#[test]
fn the_schedule_seed_alone_changes_the_interleaving() {
    // Same workload seed, different schedule seeds: at least one of a
    // handful of schedules must produce a different trace, or the seed is
    // not actually steering the interleaving.
    let base = run_case_artifacts(&pinned_spec(1), 7).trace_jsonl();
    let diverged = (2..8u64).any(|s| run_case_artifacts(&pinned_spec(s), 7).trace_jsonl() != base);
    assert!(diverged, "schedule seed never changed the trace");
}

#[test]
fn det_artifacts_commit_work_and_pass_the_oracle() {
    // Guard against a vacuous determinism property (empty traces compare
    // equal too): a deterministic run must actually commit sections, record
    // trace events for every thread, and satisfy the oracle.
    let art = run_case_artifacts(&pinned_spec(0xBEEF), 11);
    let summary = art.outcome.as_ref().expect("det case must pass the oracle");
    assert_eq!(
        summary.reader_commits + summary.writer_commits,
        3 * 60,
        "every issued section commits exactly once"
    );
    assert_eq!(art.traces.len(), 3);
    assert!(art.traces.iter().all(|t| !t.events.is_empty()));
}
