//! End-to-end tests of the schedule-space explorer: the injected
//! ordering bug is found within a bounded frontier, the emitted decision
//! trace replays bit-exactly, the frontier resumes, and delay bounding
//! beats an equal budget of random schedule draws on behaviour coverage.

use sprwl_torture::explore::{
    explore, explore_random, injected_bug_spec, replay_schedule, ExploreOptions,
};
use sprwl_torture::LockKind;
use sprwl_trace::schedule::ScheduleTrace;

const BASE_SEED: u64 = 0xE1;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sprwl-explore-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn explorer_finds_the_injected_bug_and_the_schedule_replays_bit_exactly() {
    let spec = injected_bug_spec(2, 12);
    let dir = scratch_dir("bug");
    let opts = ExploreOptions {
        budget: 256,
        max_delays: 2,
        horizon: 64,
        dump_dir: Some(dir.clone()),
        ..ExploreOptions::default()
    };
    let report = explore(&spec, BASE_SEED, &opts);
    let v = report.violation.unwrap_or_else(|| {
        panic!(
            "the weakened commit-time reader check must be caught within \
             {} schedules ({} behaviours seen)",
            report.schedules_run, report.distinct_behaviors
        )
    });
    assert!(
        v.violation.detail.contains("torn"),
        "the injected bug is a torn read, got: {}",
        v.violation.detail
    );

    // The emitted schedule file replays the violation bit-exactly.
    let path = v.schedule_path.expect("schedule file written");
    let st = ScheduleTrace::from_text(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(!st.decisions.is_empty());
    let replay = replay_schedule(&spec, BASE_SEED, &st).unwrap();
    assert!(
        replay.reproduced,
        "replay must be bit-exact:\n{}",
        replay.report
    );
    assert!(
        replay.violation.is_some(),
        "replay re-triggers the violation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fixed_lock_survives_the_same_frontier() {
    // Sanity for the bugfix framing: the same search that finds the
    // violation with the check disabled finds nothing with it enabled.
    let mut spec = injected_bug_spec(2, 12);
    spec.name = "explore-fixed-lock".into();
    match &mut spec.lock {
        LockKind::Sprwl(cfg) => cfg.debug_skip_commit_reader_check = false,
        other => panic!("unexpected lock kind {other:?}"),
    }
    let opts = ExploreOptions {
        budget: 64,
        ..ExploreOptions::default()
    };
    let report = explore(&spec, BASE_SEED, &opts);
    assert!(
        report.violation.is_none(),
        "commit-time reader check restored => no torn reads: {:?}",
        report.violation
    );
    assert!(report.schedules_run > 1);
}

#[test]
fn frontier_persists_and_resumes() {
    let mut spec = injected_bug_spec(2, 8);
    spec.name = "explore-resume".into();
    match &mut spec.lock {
        LockKind::Sprwl(cfg) => cfg.debug_skip_commit_reader_check = false,
        other => panic!("unexpected lock kind {other:?}"),
    }
    let dir = scratch_dir("resume");
    let frontier = dir.join("frontier.txt");
    let first = explore(
        &spec,
        BASE_SEED,
        &ExploreOptions {
            budget: 5,
            frontier: Some(frontier.clone()),
            ..ExploreOptions::default()
        },
    );
    assert!(!first.resumed);
    assert_eq!(first.schedules_run, 5);

    // Resume with a larger budget: the run counter continues, nothing is
    // re-executed (5 already done + at most 5 more).
    let second = explore(
        &spec,
        BASE_SEED,
        &ExploreOptions {
            budget: 10,
            frontier: Some(frontier.clone()),
            ..ExploreOptions::default()
        },
    );
    assert!(second.resumed);
    assert!(second.schedules_run > 5 && second.schedules_run <= 10);
    assert!(
        second.distinct_behaviors >= first.distinct_behaviors,
        "resumed search only adds behaviours"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delay_bounding_beats_random_draws_on_behaviour_coverage() {
    // The acceptance yardstick: at an equal schedule budget, the d=0..2
    // delay-bounded frontier observes strictly more distinct behaviour
    // fingerprints than random schedule-seed draws on the same case.
    //
    // The case is the smallest one where the two search styles genuinely
    // diverge: one uninstrumented reader against one HTM writer. Uniform
    // random picks preempt every few virtual ticks, so every draw lands
    // in the same finely-mixed corner of schedule space and most draws
    // collapse to the same behaviour; the delay-bounded frontier instead
    // enumerates coarse reorderings (run one thread long, switch once or
    // twice) that a random walk reaches with probability ~2^-k. Fully
    // deterministic: both sides derive from the fixed base seed.
    let mut spec = injected_bug_spec(2, 1);
    spec.name = "explore-coverage".into();
    spec.pairs = 1;
    match &mut spec.lock {
        LockKind::Sprwl(cfg) => cfg.debug_skip_commit_reader_check = false,
        other => panic!("unexpected lock kind {other:?}"),
    }
    let opts = ExploreOptions {
        budget: 16,
        max_delays: 2,
        horizon: 64,
        ..ExploreOptions::default()
    };
    let det = explore(&spec, 0xA, &opts);
    assert!(det.violation.is_none());
    let rnd = explore_random(&spec, 0xA, det.schedules_run);
    assert_eq!(rnd.schedules_run, det.schedules_run, "equal budgets");
    assert!(
        det.distinct_behaviors > rnd.distinct_behaviors,
        "delay bounding must beat random: {} vs {} distinct behaviours \
         over {} schedules",
        det.distinct_behaviors,
        rnd.distinct_behaviors,
        det.schedules_run
    );
}
