//! The torture acceptance suite: the full default matrix (≥1000
//! deterministic iterations per lock configuration, zero oracle
//! violations), plus self-tests proving the oracle actually detects
//! synchronization bugs when handed a broken lock.

use htm_sim::{clock, Htm, HtmConfig};
use sprwl_locks::{CommitMode, LockThread, Role, RwSync, SectionBody, SectionId};
use sprwl_torture::{base_seed, default_matrix, run_case, run_case_with, TortureSpec, Workload};

/// The acceptance floor: threads × ops ≥ 1000 per lock configuration.
const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 250;

#[test]
fn full_matrix_runs_clean() {
    let seed = base_seed();
    let matrix = default_matrix(THREADS, OPS_PER_THREAD);
    for spec in &matrix {
        assert!(
            spec.total_ops() >= 1000,
            "case {} below the 1000-iteration floor",
            spec.name
        );
        if let Err(v) = run_case(spec, seed) {
            panic!("{v}");
        }
    }
}

#[test]
fn matrix_is_deterministic_per_seed() {
    // The op mix is drawn from the seed, so committed-op totals (and hence
    // the final pair counters) must be identical across runs — whatever
    // the OS scheduler did.
    let matrix = default_matrix(2, 100);
    let spec = &matrix[0];
    let a = run_case(spec, 42).expect("clean run");
    let b = run_case(spec, 42).expect("clean run");
    assert_eq!(a.reader_commits, b.reader_commits);
    assert_eq!(a.writer_commits, b.writer_commits);
    assert_eq!(a.final_increments, b.final_increments);

    let c = run_case(spec, 43).expect("clean run");
    // Different seed ⇒ different op mix (astronomically unlikely to tie).
    assert_ne!(
        (a.reader_commits, a.writer_commits),
        (c.reader_commits, c.writer_commits),
        "distinct seeds should draw distinct op mixes"
    );
}

/// A deliberately broken "lock": sections run with no synchronization at
/// all. The oracle must catch the carnage (torn pairs or lost updates).
#[derive(Debug)]
struct NoSync;

impl RwSync for NoSync {
    fn name(&self) -> &'static str {
        "NoSync"
    }

    fn read_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        let mut d = t.ctx.direct();
        let r = f(&mut d).expect("untracked sections cannot abort");
        t.stats
            .record_commit(Role::Reader, CommitMode::Unins, clock::now() - start);
        r
    }

    fn write_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        let mut d = t.ctx.direct();
        let r = f(&mut d).expect("untracked sections cannot abort");
        t.stats
            .record_commit(Role::Writer, CommitMode::Unins, clock::now() - start);
        r
    }
}

#[test]
fn oracle_catches_unsynchronized_lock() {
    // Writer-heavy, few pairs, schedule shake on: racing unsynchronized
    // increments must collide. Give the race a handful of seeds to show
    // itself; with 8000 racing ops per attempt, one attempt virtually
    // always suffices.
    let spec = TortureSpec {
        name: "broken-nosync".into(),
        lock: sprwl_torture::LockKind::Tle, // ignored; build hook below
        htm: HtmConfig {
            sched_shake_prob: 0.05,
            ..HtmConfig::default()
        },
        threads: 4,
        ops_per_thread: 2000,
        pairs: 2,
        write_pct: 100,
        reader_span: 2,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: false,
        churn: false,
    };
    let caught = (0..10).any(|attempt| {
        run_case_with(&spec, 1000 + attempt, &|_htm: &Htm| {
            Box::new(NoSync) as Box<dyn RwSync>
        })
        .is_err()
    });
    assert!(
        caught,
        "oracle failed to flag a completely unsynchronized lock"
    );
}

#[test]
fn violations_dump_a_postmortem_event_trace() {
    // Same broken lock; beyond naming the seed, the violation must carry a
    // JSONL postmortem with run metadata on the first line and per-thread
    // event dumps (the harness's per-op marks guarantee the rings are
    // non-empty even for an uninstrumented lock like NoSync).
    let spec = TortureSpec {
        name: "broken-postmortem".into(),
        lock: sprwl_torture::LockKind::Tle,
        htm: HtmConfig {
            sched_shake_prob: 0.05,
            ..HtmConfig::default()
        },
        threads: 4,
        ops_per_thread: 2000,
        pairs: 2,
        write_pct: 100,
        reader_span: 2,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: false,
        churn: false,
    };
    for attempt in 0..10 {
        if let Err(v) = run_case_with(&spec, 3000 + attempt, &|_htm: &Htm| {
            Box::new(NoSync) as Box<dyn RwSync>
        }) {
            let path = v
                .postmortem
                .as_ref()
                .expect("violation should carry a postmortem path");
            let body = std::fs::read_to_string(path).expect("postmortem file readable");
            let mut lines = body.lines();
            let meta = lines.next().expect("meta line present");
            assert!(meta.contains("\"case\":\"broken-postmortem\""), "{meta}");
            assert!(meta.contains("TORTURE_SEED="), "{meta}");
            let events: Vec<&str> = lines.collect();
            assert!(!events.is_empty(), "postmortem has per-thread events");
            assert!(
                events.iter().any(|l| l.contains("torture-op")),
                "per-op marks present"
            );
            assert!(v.to_string().contains("postmortem trace:"));
            std::fs::remove_file(path).ok();
            return;
        }
    }
    panic!("could not provoke a violation to inspect the postmortem");
}

#[test]
fn violation_report_includes_the_lincheck_verdict() {
    // History-recording case + broken lock: the oracle fails, and the
    // linearizability checker's independent verdict rides along in the
    // violation detail as corroborating evidence.
    let spec = TortureSpec {
        name: "broken-lincheck".into(),
        lock: sprwl_torture::LockKind::Tle,
        htm: HtmConfig {
            sched_shake_prob: 0.05,
            ..HtmConfig::default()
        },
        threads: 4,
        ops_per_thread: 2000,
        pairs: 2,
        write_pct: 100,
        reader_span: 2,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: true,
        churn: false,
    };
    for attempt in 0..10 {
        if let Err(v) = run_case_with(&spec, 4000 + attempt, &|_htm: &Htm| {
            Box::new(NoSync) as Box<dyn RwSync>
        }) {
            let msg = v.to_string();
            assert!(msg.contains("lincheck verdict:"), "{msg}");
            assert!(msg.contains("replay with:"), "{msg}");
            if let Some(p) = &v.postmortem {
                std::fs::remove_file(p).ok();
            }
            return;
        }
    }
    panic!("could not provoke a violation to inspect the lincheck verdict");
}

#[test]
fn violation_report_names_case_and_seed() {
    let spec = TortureSpec {
        name: "broken-report".into(),
        lock: sprwl_torture::LockKind::Tle,
        // Schedule shake keeps NoSync violations provokable even when a
        // loaded 1-core host serializes the racing threads.
        htm: HtmConfig {
            sched_shake_prob: 0.05,
            ..HtmConfig::default()
        },
        threads: 4,
        ops_per_thread: 2000,
        pairs: 2,
        write_pct: 100,
        reader_span: 2,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: false,
        churn: false,
    };
    for attempt in 0..10 {
        if let Err(v) = run_case_with(&spec, 2000 + attempt, &|_htm: &Htm| {
            Box::new(NoSync) as Box<dyn RwSync>
        }) {
            let msg = v.to_string();
            assert!(msg.contains("broken-report"), "{msg}");
            assert!(msg.contains("TORTURE_SEED="), "{msg}");
            return;
        }
    }
    panic!("could not provoke a violation to inspect the report");
}
