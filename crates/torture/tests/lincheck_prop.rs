//! Property tests tying the linearizability checker to the live harness:
//! every *green* deterministic torture run must record a history the
//! checker accepts, and the verdict must be a pure function of the
//! recorded history — bit-exact replays yield bit-exact verdicts.
//!
//! Seeds are drawn by proptest (replay a failure with `PROPTEST_SEED`);
//! each drawn `(base_seed, schedule_seed)` pair runs both the mirror
//! workload and the cross-lock composition workload.

use htm_sim::{HtmConfig, SchedulerKind};
use proptest::prelude::*;
use sprwl::SprwlConfig;
use sprwl_lincheck::{check, CheckConfig, History, Verdict};
use sprwl_torture::{
    run_case_artifacts, CrossNesting, LincheckStatus, LockKind, TortureSpec, Workload,
};

/// A small deterministic case: contended enough that sections genuinely
/// interleave (aborts, δ-waits, fallbacks), small enough that 8+ pairs of
/// seeds stay fast.
fn det_spec(schedule_seed: u64, workload: Workload) -> TortureSpec {
    TortureSpec {
        name: match workload {
            Workload::Mirror => "prop-det-mirror".into(),
            Workload::CrossBank(_) => "prop-det-cross".into(),
            Workload::ServerKv => "prop-det-server-kv".into(),
        },
        lock: LockKind::Sprwl(SprwlConfig::default()),
        htm: HtmConfig {
            scheduler: SchedulerKind::Deterministic { schedule_seed },
            ..HtmConfig::default()
        },
        threads: 3,
        ops_per_thread: 30,
        pairs: 3,
        write_pct: 50,
        reader_span: 2,
        writer_span: 1,
        writer_scan: 0,
        workload,
        lincheck: true,
        churn: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Green det-matrix-shaped runs record linearizable histories, for
    /// both the mirror and the cross-lock composition workloads, across
    /// the drawn `(base seed, schedule seed)` pairs.
    #[test]
    fn green_det_histories_check_linearizable(
        base_seed in 1u64..0xFFFF_FFFF,
        schedule_seed in 1u64..0xFFFF_FFFF,
    ) {
        for workload in [
            Workload::Mirror,
            Workload::CrossBank(CrossNesting::Mixed),
            Workload::ServerKv,
        ] {
            let spec = det_spec(schedule_seed, workload);
            let art = run_case_artifacts(&spec, base_seed);
            let summary = art.outcome.as_ref().unwrap_or_else(|e| {
                panic!("{}: green run expected, oracle said: {e}", spec.name)
            });
            prop_assert_eq!(summary.lincheck, LincheckStatus::Linearizable);
            // The same conclusion must fall out of the raw artifacts (the
            // path the standalone CLI takes).
            let hist = History::from_traces(&art.traces)
                .unwrap_or_else(|e| panic!("{}: malformed history: {e}", spec.name));
            prop_assert!(hist.total_ops() > 0, "{}: history must be non-empty", spec.name);
            prop_assert_eq!(hist.dropped_events, 0);
            prop_assert_eq!(check(&hist, &CheckConfig::default()), Verdict::Linearizable);
        }
    }

    /// The verdict is deterministic under replay: re-running the same
    /// `(spec, base seed, schedule seed)` triple reproduces the identical
    /// history and hence the identical verdict — including through the
    /// JSONL round-trip a postmortem file would take.
    #[test]
    fn verdict_is_deterministic_under_replay(
        base_seed in 1u64..0xFFFF_FFFF,
        schedule_seed in 1u64..0xFFFF_FFFF,
    ) {
        let spec = det_spec(schedule_seed, Workload::CrossBank(CrossNesting::Mixed));
        let a = run_case_artifacts(&spec, base_seed);
        let b = run_case_artifacts(&spec, base_seed);
        let ha = History::from_traces(&a.traces).expect("history a");
        let hb = History::from_jsonl(&b.trace_jsonl()).expect("history b");
        prop_assert_eq!(ha.total_ops(), hb.total_ops());
        let (va, vb) = (
            check(&ha, &CheckConfig::default()),
            check(&hb, &CheckConfig::default()),
        );
        prop_assert_eq!(va.clone(), vb);
        prop_assert_eq!(va, check(&ha, &CheckConfig::default()));
    }
}
