//! Golden-trace regression test: a small deterministic torture case whose
//! full JSONL event trace is committed to the repository. Any change to
//! the scheduler's picking logic, virtual-clock constants, yield-point
//! placement, or the trace format shows up here as a byte diff — on the
//! exact line where the schedules first diverge — instead of as a silent
//! reshuffling of every "deterministic" run.
//!
//! When a change is *intentional*, regenerate the golden file and review
//! the diff like any other code change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sprwl-torture --test golden_trace
//! ```

use htm_sim::{HtmConfig, SchedulerKind};
use sprwl::SprwlConfig;
use sprwl_torture::{first_divergence, run_case_artifacts, LockKind, TortureSpec};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/det_smoke.trace.jsonl"
);

/// Base seed for the golden case; arbitrary but fixed forever.
const GOLDEN_BASE_SEED: u64 = 0x601D_7245_CE5E;

/// The pinned case behind the golden file. Small on purpose: big enough
/// to exercise contention, aborts, and both roles; small enough that the
/// committed trace stays reviewable.
fn golden_spec() -> TortureSpec {
    TortureSpec {
        name: "det-golden-smoke".into(),
        lock: LockKind::Sprwl(SprwlConfig::default()),
        htm: HtmConfig {
            scheduler: SchedulerKind::Deterministic {
                schedule_seed: 0x601D_5EED,
            },
            ..HtmConfig::default()
        },
        threads: 2,
        ops_per_thread: 12,
        pairs: 4,
        write_pct: 50,
        reader_span: 2,
    }
}

#[test]
fn deterministic_trace_matches_the_committed_golden_file() {
    let art = run_case_artifacts(&golden_spec(), GOLDEN_BASE_SEED);
    art.outcome
        .as_ref()
        .expect("the golden case must pass the oracle");
    let got = art.trace_jsonl();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("failed to write golden file");
        return;
    }

    let want = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "golden file {GOLDEN_PATH} unreadable ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test -p sprwl-torture --test golden_trace"
        )
    });
    if let Some((line, g, c)) = first_divergence(&want, &got) {
        panic!(
            "deterministic trace diverged from the golden file at line {line}\n  \
             golden : {g}\n  current: {c}\n\
             If this change is intentional, regenerate with\n  \
             UPDATE_GOLDEN=1 cargo test -p sprwl-torture --test golden_trace\n\
             and review the diff (scripts/diff_traces.py shows the full divergence)."
        );
    }
}
