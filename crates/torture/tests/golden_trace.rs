//! Golden-trace regression test: a small deterministic torture case whose
//! full JSONL event trace is committed to the repository. Any change to
//! the scheduler's picking logic, virtual-clock constants, yield-point
//! placement, or the trace format shows up here as a byte diff — on the
//! exact line where the schedules first diverge — instead of as a silent
//! reshuffling of every "deterministic" run.
//!
//! When a change is *intentional*, regenerate the golden file and review
//! the diff like any other code change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sprwl-torture --test golden_trace
//! ```

use htm_sim::{CapacityProfile, HtmConfig, SchedulerKind};
use sprwl::SprwlConfig;
use sprwl_torture::{
    first_divergence, run_case_artifacts, CrossNesting, LockKind, TortureSpec, Workload,
};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/det_smoke.trace.jsonl"
);

const CROSS_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/det_cross_smoke.trace.jsonl"
);

const STRETCH_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/det_stretch_smoke.trace.jsonl"
);

/// Base seed for the golden case; arbitrary but fixed forever.
const GOLDEN_BASE_SEED: u64 = 0x601D_7245_CE5E;

/// The pinned case behind the golden file. Small on purpose: big enough
/// to exercise contention, aborts, and both roles; small enough that the
/// committed trace stays reviewable.
fn golden_spec() -> TortureSpec {
    TortureSpec {
        name: "det-golden-smoke".into(),
        lock: LockKind::Sprwl(SprwlConfig::default()),
        htm: HtmConfig {
            scheduler: SchedulerKind::Deterministic {
                schedule_seed: 0x601D_5EED,
            },
            ..HtmConfig::default()
        },
        threads: 2,
        ops_per_thread: 12,
        pairs: 4,
        write_pct: 50,
        reader_span: 2,
        writer_span: 1,
        writer_scan: 0,
        // `lincheck: false` keeps the committed trace free of `lin-*`
        // marks, so the golden bytes predate — and are unaffected by —
        // the history recorder.
        workload: Workload::Mirror,
        lincheck: false,
        churn: false,
    }
}

/// The cross-lock pinned case: two composed `SpRwl` locks over disjoint
/// banks, mixed nestings, with the history recorder *on* — so the golden
/// bytes also pin the `lin-*` mark format the linearizability checker
/// consumes.
fn cross_golden_spec() -> TortureSpec {
    TortureSpec {
        name: "det-golden-cross".into(),
        lock: LockKind::Sprwl(SprwlConfig::default()),
        htm: HtmConfig {
            scheduler: SchedulerKind::Deterministic {
                schedule_seed: 0x601D_C705,
            },
            ..HtmConfig::default()
        },
        threads: 2,
        ops_per_thread: 10,
        pairs: 3,
        write_pct: 50,
        reader_span: 2,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::CrossBank(CrossNesting::Mixed),
        lincheck: true,
        churn: false,
    }
}

/// The capacity-stretching pinned case: TINY budgets with the stretching
/// ladder on, and span-3 writers whose six padded write lines overflow
/// both the direct and ROT rungs. The committed bytes pin the
/// `stretch-rot` / `stretch-split` / `stretch-chunk` event shapes on the
/// exact virtual timestamps the escalation ladder produces, so a change
/// to the rung order, the chunk flush points, or the event format shows
/// up as a line diff here.
fn stretch_golden_spec() -> TortureSpec {
    TortureSpec {
        name: "det-golden-stretch".into(),
        lock: LockKind::Sprwl(SprwlConfig::stretching()),
        htm: HtmConfig {
            scheduler: SchedulerKind::Deterministic {
                schedule_seed: 0x601D_57E7,
            },
            capacity: CapacityProfile::TINY,
            ..HtmConfig::default()
        },
        threads: 2,
        ops_per_thread: 10,
        pairs: 4,
        write_pct: 60,
        reader_span: 2,
        writer_span: 3,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: false,
        churn: false,
    }
}

fn assert_matches_golden(spec: &TortureSpec, path: &str, base_seed: u64, check_history: bool) {
    let art = run_case_artifacts(spec, base_seed);
    let summary = art
        .outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("{}: the golden case must pass the oracle: {e}", spec.name));
    if check_history {
        assert_eq!(
            summary.lincheck.label(),
            "ok",
            "{}: recorded history must be linearizable",
            spec.name
        );
    }
    let got = art.trace_jsonl();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("failed to write golden file");
        return;
    }

    let want = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "golden file {path} unreadable ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test -p sprwl-torture --test golden_trace"
        )
    });
    if let Some((line, g, c)) = first_divergence(&want, &got) {
        panic!(
            "{}: deterministic trace diverged from the golden file at line {line}\n  \
             golden : {g}\n  current: {c}\n\
             If this change is intentional, regenerate with\n  \
             UPDATE_GOLDEN=1 cargo test -p sprwl-torture --test golden_trace\n\
             and review the diff (scripts/diff_traces.py shows the full divergence).",
            spec.name
        );
    }
}

#[test]
fn deterministic_trace_matches_the_committed_golden_file() {
    assert_matches_golden(&golden_spec(), GOLDEN_PATH, GOLDEN_BASE_SEED, false);
}

#[test]
fn cross_lock_trace_matches_the_committed_golden_file() {
    assert_matches_golden(
        &cross_golden_spec(),
        CROSS_GOLDEN_PATH,
        GOLDEN_BASE_SEED,
        true,
    );
}

#[test]
fn stretch_trace_matches_the_committed_golden_file() {
    assert_matches_golden(
        &stretch_golden_spec(),
        STRETCH_GOLDEN_PATH,
        GOLDEN_BASE_SEED,
        false,
    );
    // Guard against the golden pinning a vacuous schedule: the committed
    // bytes must actually contain the stretching events they exist to pin.
    let golden = std::fs::read_to_string(STRETCH_GOLDEN_PATH).expect("golden just checked");
    for kind in ["stretch-split", "stretch-chunk"] {
        assert!(
            golden.contains(kind),
            "stretch golden carries no {kind} events — the case no longer stretches"
        );
    }
}
