//! Non-vacuousness guards for the capacity-stretching det cases. Bit-
//! exact replay of `det-capacity-{rot,split}` is already enforced by the
//! matrix sweep in `determinism.rs`; an empty property would replay
//! bit-exactly too. These tests pin what the cases exist to exercise:
//! the ROT rung actually commits rollback-only transactions, and the
//! split rung actually chunks the section under the fallback ticket —
//! with the mirror oracle and lincheck verdict green throughout.

use sprwl_locks::{CommitMode, Role};
use sprwl_torture::{det_matrix, run_case_artifacts, TortureSpec, DEFAULT_SEED};
use sprwl_trace::EventKind;

fn matrix_case(name: &str) -> TortureSpec {
    det_matrix(3, 40)
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("det matrix lost its {name} case"))
}

#[test]
fn det_capacity_rot_lands_every_writer_on_the_rot_rung() {
    // writer_scan=4 puts ten padded read lines against TINY's four-line
    // HTM read budget: the direct rung can never commit a writer, and
    // the 2-line write set fits the ROT budget, so the stretching ladder
    // must stop at rung one. If this case ever drifts back to plain HTM
    // commits (or all the way to the fallback), the ROT coverage the
    // case exists for is gone — fail loudly rather than test nothing.
    let spec = matrix_case("det-capacity-rot");
    assert_eq!(spec.writer_scan, 4, "the scan knob is the case's point");
    let art = run_case_artifacts(&spec, DEFAULT_SEED);
    let summary = art.outcome.as_ref().expect("oracle must pass");
    assert_eq!(summary.lincheck.label(), "ok");

    let by = |mode| {
        art.stats
            .iter()
            .map(|s| s.commits_by(Role::Writer, mode))
            .sum::<u64>()
    };
    assert_eq!(
        by(CommitMode::Htm),
        0,
        "a ten-line read set cannot fit TINY's direct rung"
    );
    assert!(
        by(CommitMode::Rot) > 0,
        "the ROT rung never committed — the case is vacuous"
    );
    let rot_events = art
        .traces
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| matches!(e.kind, EventKind::StretchRot { .. }))
        .count();
    assert!(rot_events > 0, "no stretch-rot events in the trace");
}

#[test]
fn det_capacity_split_chunks_writers_under_the_fallback_ticket() {
    // writer_span=3 makes the write set six padded lines — over the ROT
    // budget too — so every writer must be split into ordered
    // sub-transactions under the fallback ticket (Gl commits, one
    // stretch-chunk event per flush, a closing stretch-split).
    let spec = matrix_case("det-capacity-split");
    let art = run_case_artifacts(&spec, DEFAULT_SEED);
    let summary = art.outcome.as_ref().expect("oracle must pass");
    assert_eq!(summary.lincheck.label(), "ok");

    let gl_writers: u64 = art
        .stats
        .iter()
        .map(|s| s.commits_by(Role::Writer, CommitMode::Gl))
        .sum();
    assert!(
        gl_writers > 0,
        "split sections must commit under the ticket"
    );

    let (mut splits, mut chunks) = (0usize, 0usize);
    for e in art.traces.iter().flat_map(|t| t.events.iter()) {
        match e.kind {
            EventKind::StretchSplit { .. } => splits += 1,
            EventKind::StretchChunk { .. } => chunks += 1,
            _ => {}
        }
    }
    assert!(splits > 0, "no stretch-split events in the trace");
    assert!(
        chunks >= splits,
        "every split must have flushed at least one chunk ({chunks} chunks / {splits} splits)"
    );
}
