//! The harness side of the lincheck exit-code contract: a budget-starved
//! `Unknown` verdict surfaces in the summary's `lin=` column, never as a
//! violation. Lives in its own test binary because it sets
//! `TORTURE_LIN_BUDGET` for the whole process.

use htm_sim::{HtmConfig, SchedulerKind};
use sprwl_torture::{run_case, LincheckStatus, LockKind, TortureSpec, Workload};

fn spec() -> TortureSpec {
    TortureSpec {
        name: "lin-budget-contract".into(),
        lock: LockKind::Sprwl(sprwl::SprwlConfig::default()),
        htm: HtmConfig {
            scheduler: SchedulerKind::Deterministic { schedule_seed: 0 },
            sched_shake_prob: 0.0,
            ..HtmConfig::default()
        },
        threads: 2,
        ops_per_thread: 20,
        pairs: 2,
        write_pct: 40,
        reader_span: 2,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: true,
        churn: false,
    }
}

#[test]
fn starved_budget_reports_unknown_without_failing_the_case() {
    // One node is never enough to linearize a 40-op history.
    std::env::set_var("TORTURE_LIN_BUDGET", "1");
    let starved = run_case(&spec(), 7)
        .expect("an exhausted lincheck budget must stay a verdict, not a violation");
    assert_eq!(starved.lincheck, LincheckStatus::Unknown);
    assert_eq!(starved.lincheck.label(), "unknown");

    // The same run under the default budget is decidable and linearizable
    // — proving the Unknown above really was the budget, not the history.
    std::env::remove_var("TORTURE_LIN_BUDGET");
    let rested = run_case(&spec(), 7).expect("clean lock, clean case");
    assert_eq!(rested.lincheck, LincheckStatus::Linearizable);
    assert_eq!(rested.lincheck.label(), "ok");
}
