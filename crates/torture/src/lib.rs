//! Deterministic concurrency-torture harness for every [`RwSync`]
//! implementation in the workspace.
//!
//! # How it works
//!
//! Each *case* ([`TortureSpec`]) drives one lock implementation with a
//! fixed number of randomized-but-reproducible reader/writer operations
//! over a bank of **mirror pairs** in simulated memory: cells `A[p]` and
//! `B[p]` start equal and every writer increments both inside one write
//! critical section. The pair structure turns every synchronization bug
//! into an observable arithmetic fact:
//!
//! * **torn read** — a reader (or an entering writer) observes
//!   `A[p] != B[p]`: it saw the middle of someone's write section;
//! * **lost update** — at the end, `A[p]` is smaller than the number of
//!   committed writer operations on `p`: two writers overlapped;
//! * **ghost update** — `A[p]` is larger: an aborted speculative attempt
//!   leaked its buffered writes;
//! * **leaked registration** — after all threads joined, the lock's own
//!   [`RwSync::check_quiescent`] oracle finds a raised reader flag, an
//!   unbalanced SNZI arrive, a held fallback lock, or a stale scheduling
//!   advert;
//! * **miscounted stats** — a thread's [`SessionStats`] disagree with the
//!   operations it actually issued (commits ≠ ops, or the per-cause abort
//!   counts do not sum to the abort total).
//!
//! Violations are reported **only** through values returned from
//! *committed* critical sections and through post-run memory inspection,
//! never from inside speculative attempts — an aborted transaction's
//! sights are allowed to be arbitrary, so they must not poison the oracle.
//!
//! # Determinism and replay
//!
//! All randomness — per-thread operation sequences, HTM interrupt
//! injection, and the simulator's schedule perturbation — derives from
//! the case seed. A violation prints that seed; replay it with
//!
//! ```text
//! TORTURE_SEED=0x<seed> cargo test -p sprwl-torture
//! ```
//!
//! (or pass `--seed` to the `torture` binary). Under the free-running
//! scheduler, OS thread interleavings are of course not replayed
//! bit-for-bit, but every checked invariant must hold under *any*
//! interleaving, and the seeded schedule shake
//! ([`htm_sim::HtmConfig::sched_shake_prob`]) explores different
//! interleaving families per seed.
//!
//! Cases run under [`htm_sim::SchedulerKind::Deterministic`] (the
//! [`det_matrix`]) go further: the simulator serializes every thread
//! through explicit yield points and picks the next runnable thread from
//! a seeded PRNG, so the *entire interleaving* is a pure function of
//! `(schedule seed, case seed, spec)`. The runner derives a per-case
//! schedule seed from the case seed (override it with
//! `TORTURE_SCHED_SEED`, same syntax as `TORTURE_SEED`); a violation
//! prints both, and replaying with both re-executes the exact
//! interleaving that failed — bit-identical per-thread event traces
//! included. When a deterministic case fails, the runner immediately
//! re-runs it and appends a determinism note to the report: either
//! confirmation that the replay was bit-exact and re-triggered the same
//! violation, or the first trace line where the two runs diverged (see
//! [`first_divergence`]), which indicates a thread blocking outside the
//! scheduler's view.
//!
//! Workers trace into a postmortem ring by default; `TORTURE_TRACE`
//! (`off`, `ring:CAP` or `sampled:RATE:CAP`, the
//! [`TraceConfig::parse`] grammar) overrides the policy for
//! non-history cases — lincheck cases always keep the full ring their
//! oracle needs. The active policy is recorded in every violation and
//! postmortem dump, and in the replay command when the override drove it,
//! so a replayed run traces exactly like the failing one.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::fmt;

use htm_sim::{Htm, HtmConfig, SchedulerKind};
use sprwl::{InnerMode, SpRwl, SpRwlPair, SprwlConfig};
use sprwl_lincheck::{check, labels, CheckConfig, History, Verdict};
use sprwl_locks::{
    BrLock, CommitMode, LockThread, McsRwLock, PassiveRwLock, PhaseFairRwLock, PthreadRwLock, Role,
    RwLe, RwSync, SectionId, SessionStats, Tle,
};
use sprwl_server::ServerConfig as KvServerConfig;
use sprwl_trace::{export, EventKind, ThreadTrace, TraceBuffer, TraceConfig};
use sprwl_workloads::redis::RedisSpec;

pub mod explore;

/// Sentinel returned from a critical section that observed a torn mirror
/// pair. Legitimate section results (pair counters and their partial sums)
/// stay far below this for any feasible iteration count.
const POISON: u64 = u64::MAX;

/// Section ids used by the torture workload (the duration estimator keys
/// its per-section statistics on these).
const SEC_READ: SectionId = SectionId(0);
const SEC_WRITE: SectionId = SectionId(1);
const SEC_CROSS: SectionId = SectionId(2);

/// Default base seed when `TORTURE_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0x0070_D70C_AB1E_5EED;

/// Stateless splitmix64 step — the harness's only source of randomness.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a case name, for deriving per-case seeds from the base seed.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// A tiny deterministic per-thread PRNG (splitmix64 stream).
#[derive(Debug)]
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    #[inline]
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.0)
    }
}

/// Salt mixed into a case seed to derive its default schedule seed, so the
/// two seeded streams (workload randomness vs. thread interleaving) never
/// collide even though both descend from the same case seed.
const SCHED_SALT: u64 = 0x5EED_5C8E_D01E_D00D;

/// Parses a `u64` env-var value, decimal or `0x…` hex.
fn parse_seed_var(name: &str) -> Option<u64> {
    let s = std::env::var(name).ok()?;
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("{name} {s:?} is not a u64")))
}

/// The base seed for this process: `TORTURE_SEED` (decimal or `0x…` hex)
/// if set, [`DEFAULT_SEED`] otherwise.
pub fn base_seed() -> u64 {
    parse_seed_var("TORTURE_SEED").unwrap_or(DEFAULT_SEED)
}

/// The schedule-seed override for deterministic cases: `TORTURE_SCHED_SEED`
/// (decimal or `0x…` hex) if set. When absent, each deterministic case
/// derives its schedule seed from its case seed, so a plain `TORTURE_SEED`
/// replay already reproduces the interleaving; the override exists to pin
/// the schedule while varying the workload seed (or vice versa).
pub fn sched_seed_override() -> Option<u64> {
    parse_seed_var("TORTURE_SCHED_SEED")
}

/// The schedule seed a deterministic case runs under when
/// `TORTURE_SCHED_SEED` is not set: a salted mix of the case seed.
pub fn derived_sched_seed(case_seed: u64) -> u64 {
    mix64(case_seed ^ SCHED_SALT)
}

/// The worker trace-policy override: `TORTURE_TRACE` in the
/// [`TraceConfig::parse`] grammar (`off`, `ring:CAP`, `sampled:RATE:CAP`).
/// `None` when unset.
///
/// # Panics
///
/// Panics on a malformed value — same contract as the seed vars: a typo'd
/// knob must not silently run the default configuration.
pub fn trace_override() -> Option<TraceConfig> {
    let s = std::env::var("TORTURE_TRACE").ok()?;
    Some(
        TraceConfig::parse(&s).unwrap_or_else(|| {
            panic!("TORTURE_TRACE {s:?} is not off, ring:CAP or sampled:RATE:CAP")
        }),
    )
}

/// Compares two JSONL trace dumps line by line and returns the first
/// divergence as `(1-based line number, line from a, line from b)`, or
/// `None` if the dumps are byte-identical. A side that ran out of lines
/// reports `"<end of trace>"`. This is the in-process twin of
/// `scripts/diff_traces.py`.
pub fn first_divergence(a: &str, b: &str) -> Option<(usize, String, String)> {
    const END: &str = "<end of trace>";
    let (mut la, mut lb) = (a.lines(), b.lines());
    let mut n = 0usize;
    loop {
        n += 1;
        match (la.next(), lb.next()) {
            (None, None) => return None,
            (x, y) if x == y => {}
            (x, y) => {
                return Some((
                    n,
                    x.unwrap_or(END).to_string(),
                    y.unwrap_or(END).to_string(),
                ))
            }
        }
    }
}

/// Which lock implementation a torture case exercises.
#[derive(Debug, Clone)]
pub enum LockKind {
    /// SpRWL with the given configuration.
    Sprwl(SprwlConfig),
    /// Plain transactional lock elision.
    Tle,
    /// Read-write lock elision (requires a ROT-capable capacity profile).
    RwLe,
    /// The MCS-style queue-based fair read-write lock.
    McsRw,
    /// The Linux-style big-reader lock.
    BrLock,
    /// The big-reader lock with the BRAVO visible-readers bias layer.
    BrLockBias,
    /// Brandenburg–Anderson phase-fair ticket lock.
    PhaseFair,
    /// The version-consensus passive read-write lock.
    Passive,
    /// The mutex-and-condvar `pthread_rwlock_t` work-alike.
    PthreadRw,
}

impl LockKind {
    /// Instantiates the lock for `htm`.
    ///
    /// # Panics
    ///
    /// Panics if the kind is incompatible with the HTM configuration
    /// (e.g. [`LockKind::RwLe`] on a profile without ROT support) or the
    /// simulated memory is exhausted.
    pub fn build(&self, htm: &Htm) -> Box<dyn RwSync> {
        let n = htm.max_threads();
        match self {
            LockKind::Sprwl(cfg) => Box::new(SpRwl::new(htm, cfg.clone())),
            LockKind::Tle => Box::new(Tle::new(htm)),
            LockKind::RwLe => Box::new(RwLe::new(htm)),
            LockKind::McsRw => Box::new(McsRwLock::new(n)),
            LockKind::BrLock => Box::new(BrLock::new(n)),
            LockKind::BrLockBias => Box::new(BrLock::with_bias(
                n,
                sprwl_locks::BiasPolicy {
                    // Zero cooldown: readers re-arm on their next arrival,
                    // so every writer pays a real revocation drain.
                    rearm_cooldown_ns: 0,
                    ..sprwl_locks::BiasPolicy::default()
                },
            )),
            LockKind::PhaseFair => Box::new(PhaseFairRwLock::new()),
            LockKind::Passive => Box::new(PassiveRwLock::new(n)),
            LockKind::PthreadRw => Box::new(PthreadRwLock::new()),
        }
    }
}

/// Which inner role the composed sections of a cross-lock case take (the
/// outer role is always writer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossNesting {
    /// Every composed section nests a reader in a writer.
    ReadInWriter,
    /// Every composed section nests a writer in a writer.
    WriteInWriter,
    /// Composed sections alternate between both nestings, seeded.
    Mixed,
}

/// The operation shape a torture case drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The classic single-lock mirror-pair workload.
    Mirror,
    /// Two SpRWL locks guarding disjoint mirror banks, with plain
    /// single-lock sections on each plus *composed* sections that acquire
    /// both in one critical section (see [`sprwl::SpRwlPair`]). Requires
    /// [`LockKind::Sprwl`]; the same config instantiates both locks.
    CrossBank(CrossNesting),
    /// The whole `sprwl-server` sharded async KV service end-to-end:
    /// hashed key routing over [`TortureSpec::pairs`] shards (one SpRWL
    /// each), future-based guard acquisition parked on wake-lists, and
    /// redis-shaped GET/SET/MSET traffic. "Pair" `p` of the oracle is
    /// shard `p`'s store: its final counter sum must equal the committed
    /// increments every worker routed there. Requires
    /// [`LockKind::Sprwl`] (its `reader_tracking` configures every shard)
    /// and a deterministic scheduler.
    ServerKv,
}

/// One torture case: a lock, a fault model, and a workload shape.
#[derive(Debug, Clone)]
pub struct TortureSpec {
    /// Case name (drives the per-case seed and appears in reports).
    pub name: String,
    /// The lock under test.
    pub lock: LockKind,
    /// HTM fault model (capacity, conflict policy, interrupt injection,
    /// schedule shake). `max_threads` and `seed` are overwritten by the
    /// runner.
    pub htm: HtmConfig,
    /// Worker threads.
    pub threads: usize,
    /// Operations (critical sections) issued per thread.
    pub ops_per_thread: usize,
    /// Mirror pairs in the shared bank (per lock, for cross-bank cases).
    pub pairs: usize,
    /// Percentage (0–100) of operations that are writes.
    pub write_pct: u32,
    /// Mirror pairs each read section scans.
    pub reader_span: usize,
    /// Mirror pairs each write section increments (default 1) — the
    /// capacity-stretching torture axis. On the TINY profile even a span
    /// of 1 overflows the HTM read budget (pair lines plus the reader-flag
    /// lines of the commit check) while its 2 write lines still fit the
    /// ROT budget, so a stretching lock commits on the ROT rung; a span
    /// ≥ 2 overflows the ROT write budget too and forces the ordered
    /// sub-transaction split. The oracle and the lincheck history both
    /// treat the spanned increments as one atomic multi-register op, so
    /// either rung tearing a pair — or a reader observing a half-applied
    /// span — is a verdict, not noise.
    pub writer_span: usize,
    /// Extra mirror pairs each write section *reads* (observing them into
    /// the lincheck history) before its increments, clamped so the scan
    /// window never overlaps the increment window (default 0). This is
    /// the read-heavy writer shape of the paper's long traversals: with
    /// `alloc_padded` banks a scan of `s` pairs adds `2s` read-only lines
    /// to the writer's footprint without growing its write set, which is
    /// precisely what overflows the HTM budget while still fitting the
    /// ROT budget — the rung `det-capacity-rot` exists to exercise.
    pub writer_scan: usize,
    /// The operation shape (single-lock mirror or two-lock cross-bank).
    pub workload: Workload,
    /// Record a `lin-*` operation history in each worker's trace and run
    /// the offline linearizability checker as a second verdict after the
    /// end-state oracle. Enlarges the per-thread trace ring so the whole
    /// history fits.
    pub lincheck: bool,
    /// Mid-case dynamic thread churn: halfway through its op quota each
    /// worker releases its claimed thread context back to the registry
    /// and re-acquires a (possibly different) slot before continuing —
    /// the dynamic-registration torture axis. The quiescence oracle then
    /// also requires every context to be released after the workers join.
    /// Mirror workload only.
    pub churn: bool,
}

impl TortureSpec {
    /// Total operations this case issues across all threads.
    pub fn total_ops(&self) -> usize {
        self.threads * self.ops_per_thread
    }
}

/// An invariant violation, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The case that failed.
    pub case: String,
    /// The seed the case ran under (already case-derived).
    pub seed: u64,
    /// The base seed the run started from (what `TORTURE_SEED` replays).
    pub base_seed: u64,
    /// The schedule seed, when the case ran under the deterministic
    /// scheduler (what `TORTURE_SCHED_SEED` replays). `None` for
    /// free-running cases, whose interleavings are not replayable.
    pub sched_seed: Option<u64>,
    /// What the oracle saw.
    pub detail: String,
    /// The trace policy the workers ran under, in [`TraceConfig::label`]
    /// form (e.g. `ring:512`, `sampled:64:512`) — recorded so the
    /// postmortem's coverage (full tail vs. 1-in-N sections) is part of
    /// the failure report, and so a replay can re-trace identically.
    pub trace: String,
    /// Where the per-thread event-trace postmortem was dumped (JSONL; the
    /// first line is run metadata with the replay command), if the dump
    /// could be written.
    pub postmortem: Option<std::path::PathBuf>,
}

impl Violation {
    /// The exact shell prefix + command that replays this violation. For
    /// deterministic cases it pins both seeds, so the replay re-executes
    /// the failing interleaving bit-for-bit. When a `TORTURE_TRACE`
    /// override shaped this run's tracing, the prefix pins that too.
    pub fn replay_cmd(&self) -> String {
        let trace_prefix = if std::env::var_os("TORTURE_TRACE").is_some() {
            format!("TORTURE_TRACE={} ", self.trace)
        } else {
            String::new()
        };
        match self.sched_seed {
            Some(s) => format!(
                "{trace_prefix}TORTURE_SEED={:#x} TORTURE_SCHED_SEED={s:#x} cargo test -p sprwl-torture",
                self.base_seed
            ),
            None => format!(
                "{trace_prefix}TORTURE_SEED={:#x} cargo test -p sprwl-torture",
                self.base_seed
            ),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "torture violation in case `{}`: {}\n  replay with: {}\n  (case seed {:#x})",
            self.case,
            self.detail,
            self.replay_cmd(),
            self.seed
        )?;
        if let Some(p) = &self.postmortem {
            write!(f, "\n  postmortem trace: {}", p.display())?;
        }
        Ok(())
    }
}

/// Events each torture worker keeps in its postmortem ring: deep enough to
/// cover the tail of a run (the marks plus the lock's own lifecycle
/// events), small enough to stay off the workload's critical path.
const POSTMORTEM_RING: usize = 512;

/// Dumps the per-thread traces next to a violation: one JSONL file whose
/// first line is run metadata (including the replay command), then every
/// thread's chronological events. Directory: `TORTURE_DUMP_DIR` if set,
/// the OS temp directory otherwise. Returns `None` if the write failed —
/// a postmortem must never turn a violation report into a panic.
fn write_postmortem(v: &Violation, traces: &[ThreadTrace]) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("TORTURE_DUMP_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let path = dir.join(format!(
        "torture-{}-{:016x}.postmortem.jsonl",
        v.case, v.seed
    ));
    let sched = match v.sched_seed {
        Some(s) => format!("\"{s:#x}\""),
        None => "null".to_string(),
    };
    let mut body = format!(
        "{{\"case\":{:?},\"detail\":{:?},\"base_seed\":\"{:#x}\",\"case_seed\":\"{:#x}\",\"sched_seed\":{},\"trace\":{:?},\"replay\":{:?},\"threads\":{}}}\n",
        v.case,
        v.detail,
        v.base_seed,
        v.seed,
        sched,
        v.trace,
        v.replay_cmd(),
        traces.len()
    );
    body.push_str(&export::jsonl(traces));
    std::fs::write(&path, body).ok().map(|()| path)
}

/// What the linearizability checker concluded about a clean run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LincheckStatus {
    /// The case did not record a history (`lincheck: false`).
    #[default]
    NotRun,
    /// A linearization of the recorded history exists.
    Linearizable,
    /// The checker could not decide (incomplete history or node budget).
    Unknown,
}

impl LincheckStatus {
    /// Short label for report lines.
    pub fn label(self) -> &'static str {
        match self {
            LincheckStatus::NotRun => "off",
            LincheckStatus::Linearizable => "ok",
            LincheckStatus::Unknown => "unknown",
        }
    }
}

/// Aggregate outcome of a clean run (for reporting and smoke assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Committed read sections.
    pub reader_commits: u64,
    /// Committed write sections.
    pub writer_commits: u64,
    /// Sections that committed in hardware (HTM or ROT).
    pub speculative_commits: u64,
    /// Aborted speculative attempts (all causes).
    pub aborts: u64,
    /// Sum of all mirror-pair counters at the end of the run.
    pub final_increments: u64,
    /// The linearizability checker's verdict on the recorded history (a
    /// non-linearizable history never reaches a summary — it is a
    /// violation).
    pub lincheck: LincheckStatus,
}

/// Per-thread output collected after the workers join.
#[derive(Debug)]
struct ThreadOut {
    incr: Vec<u64>,
    reader_ops: u64,
    writer_ops: u64,
    torn: Option<String>,
    stats: SessionStats,
    trace: ThreadTrace,
}

/// Trace-ring capacity for a worker: history-recording cases need the
/// *whole* run to fit (inv/effect/ret marks plus the lock's own lifecycle
/// events, with a generous per-op allowance for retries), postmortem-only
/// cases just keep a tail.
fn worker_ring(spec: &TortureSpec) -> usize {
    if spec.lincheck {
        spec.ops_per_thread * 96 + POSTMORTEM_RING
    } else {
        POSTMORTEM_RING
    }
}

/// The trace policy torture workers run under: the `TORTURE_TRACE`
/// override when set, the default postmortem ring otherwise. History
/// (lincheck) cases always keep the full ring — their oracle consumes the
/// complete `lin-*` mark stream, which sampling (or `off`) would starve.
fn worker_trace(spec: &TortureSpec) -> TraceConfig {
    if spec.lincheck {
        return TraceConfig::ring(worker_ring(spec));
    }
    trace_override().unwrap_or_else(|| TraceConfig::ring(worker_ring(spec)))
}

/// In the linearizability history, a mirror pair is **one register** of
/// the sequential model: a committed write section is a fetch-and-add
/// returning the pre-value, a read section observes one value per pair.
/// Cross-bank cases namespace the inner lock's pairs after the outer's.
fn reg_of(bank: usize, pair: usize, pairs: usize) -> u64 {
    (bank * pairs + pair) as u64
}

/// Mid-case context churn: tears the worker's [`LockThread`] down
/// (releasing its registry slot and deregistering from the scheduler) and
/// rebuilds it on a freshly acquired — possibly different — slot,
/// carrying the accumulated stats and trace across. The gap between
/// release and re-acquire runs off-schedule; surviving that window is
/// exactly what the dynamic-registration machinery is for.
fn churn_ctx<'h>(mut t: LockThread<'h>, htm: &'h Htm) -> LockThread<'h> {
    let old = t.tid() as u32;
    t.trace.push(EventKind::SlotRelease { slot: old });
    let stats = std::mem::take(&mut t.stats);
    let trace = std::mem::replace(&mut t.trace, TraceBuffer::disabled(old));
    drop(t);
    let mut t = LockThread::with_trace(htm.acquire_thread(), TraceConfig::Off);
    t.stats = stats;
    t.trace = trace;
    let new = t.tid() as u32;
    t.trace.push(EventKind::SlotAcquire { slot: new });
    t
}

fn worker(
    lock: &dyn RwSync,
    htm: &Htm,
    spec: &TortureSpec,
    bank_a: &[htm_sim::CellId],
    bank_b: &[htm_sim::CellId],
    case_seed: u64,
    tid: usize,
) -> ThreadOut {
    // Every worker keeps an event ring so an oracle violation can dump the
    // tail of what each thread was doing — the lock's own lifecycle events
    // (for the instrumented schemes) plus one mark per issued op — and, for
    // lincheck cases, the full `lin-*` operation history.
    let mut t = LockThread::with_trace(htm.thread(tid), worker_trace(spec));
    let mut rng = Prng::new(mix64(case_seed ^ ((tid as u64 + 1) << 32)));
    let mut incr = vec![0u64; spec.pairs];
    let mut reader_ops = 0u64;
    let mut writer_ops = 0u64;
    let mut torn = None;
    let lin = spec.lincheck;
    let mut obs: Vec<(usize, u64)> = Vec::with_capacity(spec.pairs);
    let mut scan_obs: Vec<(usize, u64)> = Vec::with_capacity(spec.pairs);

    for seq in 0..spec.ops_per_thread as u64 {
        if spec.churn && seq > 0 && seq == spec.ops_per_thread as u64 / 2 {
            t = churn_ctx(t, htm);
        }
        let is_write = rng.next() % 100 < u64::from(spec.write_pct);
        let p = (rng.next() as usize) % spec.pairs;
        t.trace.push(EventKind::Mark {
            label: "torture-op",
            a: p as u64,
            b: u64::from(is_write),
        });
        if is_write {
            let span = spec.writer_span.min(spec.pairs).max(1);
            let scan = spec.writer_scan.min(spec.pairs - span);
            if lin {
                // Invocation mark *before* the section call, so the
                // recorded interval contains the true one.
                t.trace.push(EventKind::Mark {
                    label: labels::INV,
                    a: seq,
                    b: 1,
                });
            }
            let r = lock.write_section(&mut t, SEC_WRITE, &mut |acc| {
                // The side buffers are reset at the top of every attempt,
                // so after the call they hold exactly the *committed*
                // attempt's observations (aborted attempts never return).
                obs.clear();
                scan_obs.clear();
                // Scan phase: read-only pairs disjoint from the increment
                // window, torn-checked like any reader.
                for k in 0..scan {
                    let i = (p + span + k) % spec.pairs;
                    let a = acc.read(bank_a[i])?;
                    let b = acc.read(bank_b[i])?;
                    if a != b {
                        return Ok(POISON);
                    }
                    scan_obs.push((i, a));
                }
                for k in 0..span {
                    let i = (p + k) % spec.pairs;
                    let a = acc.read(bank_a[i])?;
                    let b = acc.read(bank_b[i])?;
                    acc.write(bank_a[i], a + 1)?;
                    acc.write(bank_b[i], b + 1)?;
                    if a != b {
                        return Ok(POISON);
                    }
                    obs.push((i, a));
                }
                Ok(0)
            });
            if r == POISON {
                // No lin-ret: the op stays pending and the extractor drops
                // it (the case is already failing the end-state oracle).
                torn = Some(format!("writer {tid} entered on torn pair near {p}"));
                break;
            }
            if lin {
                for &(i, v) in &scan_obs {
                    t.trace.push(EventKind::Mark {
                        label: labels::READ,
                        a: reg_of(0, i, spec.pairs),
                        b: v,
                    });
                }
                for &(i, v) in &obs {
                    t.trace.push(EventKind::Mark {
                        label: labels::WRITE,
                        a: reg_of(0, i, spec.pairs),
                        b: v,
                    });
                }
                t.trace.push(EventKind::Mark {
                    label: labels::RET,
                    a: seq,
                    b: 0,
                });
            }
            for k in 0..span {
                incr[(p + k) % spec.pairs] += 1;
            }
            writer_ops += 1;
        } else {
            let span = spec.reader_span.min(spec.pairs).max(1);
            let start = (rng.next() as usize) % spec.pairs;
            if lin {
                t.trace.push(EventKind::Mark {
                    label: labels::INV,
                    a: seq,
                    b: 0,
                });
            }
            let r = lock.read_section(&mut t, SEC_READ, &mut |acc| {
                // The side buffer is reset at the top of every attempt, so
                // after the call it holds exactly the *committed* attempt's
                // observations (retried attempts overwrite it).
                obs.clear();
                let mut sum = 0u64;
                for k in 0..span {
                    let i = (start + k) % spec.pairs;
                    let a = acc.read(bank_a[i])?;
                    let b = acc.read(bank_b[i])?;
                    if a != b {
                        return Ok(POISON);
                    }
                    obs.push((i, a));
                    sum = sum.wrapping_add(a);
                }
                Ok(sum)
            });
            if r == POISON {
                torn = Some(format!("reader {tid} saw a torn pair near {start}"));
                break;
            }
            if lin {
                for &(i, v) in &obs {
                    t.trace.push(EventKind::Mark {
                        label: labels::READ,
                        a: reg_of(0, i, spec.pairs),
                        b: v,
                    });
                }
                t.trace.push(EventKind::Mark {
                    label: labels::RET,
                    a: seq,
                    b: 0,
                });
            }
            reader_ops += 1;
        }
    }

    ThreadOut {
        incr,
        reader_ops,
        writer_ops,
        torn,
        trace: t.trace.snapshot(),
        stats: t.stats,
    }
}

/// The cross-bank worker: plain single-lock sections on each of the two
/// locks plus composed two-lock sections, all recorded into one history
/// over the union of both register banks.
#[allow(clippy::too_many_arguments)]
fn worker_cross(
    pair: &SpRwlPair,
    htm: &Htm,
    spec: &TortureSpec,
    nesting: CrossNesting,
    banks: &[Vec<htm_sim::CellId>; 4],
    case_seed: u64,
    tid: usize,
) -> ThreadOut {
    let [a1, b1, a2, b2] = banks;
    let mut t = LockThread::with_trace(htm.thread(tid), worker_trace(spec));
    let mut rng = Prng::new(mix64(case_seed ^ ((tid as u64 + 1) << 32)));
    // Outer-lock pairs occupy registers [0, pairs), inner [pairs, 2*pairs).
    let mut incr = vec![0u64; 2 * spec.pairs];
    let mut reader_ops = 0u64;
    let mut writer_ops = 0u64;
    let mut torn = None;
    let lin = spec.lincheck;
    let mut obs: Vec<(usize, u64)> = Vec::with_capacity(spec.pairs);

    for seq in 0..spec.ops_per_thread as u64 {
        let roll = rng.next() % 100;
        if roll < 30 {
            // Composed section: outer write + inner read or write.
            let mode = match nesting {
                CrossNesting::ReadInWriter => InnerMode::Read,
                CrossNesting::WriteInWriter => InnerMode::Write,
                CrossNesting::Mixed => {
                    if rng.next().is_multiple_of(2) {
                        InnerMode::Read
                    } else {
                        InnerMode::Write
                    }
                }
            };
            let p1 = (rng.next() as usize) % spec.pairs;
            let p2 = (rng.next() as usize) % spec.pairs;
            t.trace.push(EventKind::Mark {
                label: "torture-cross",
                a: p1 as u64,
                b: p2 as u64,
            });
            if lin {
                t.trace.push(EventKind::Mark {
                    label: labels::INV,
                    a: seq,
                    b: 2 + u64::from(mode == InnerMode::Write),
                });
            }
            let (pa1, pb1, pa2, pb2) = (a1[p1], b1[p1], a2[p2], b2[p2]);
            let mut inner_obs = 0u64;
            let r = pair.composed_section(&mut t, SEC_CROSS, mode, &mut |acc| {
                let va1 = acc.read(pa1)?;
                let vb1 = acc.read(pb1)?;
                acc.write(pa1, va1 + 1)?;
                acc.write(pb1, vb1 + 1)?;
                let va2 = acc.read(pa2)?;
                let vb2 = acc.read(pb2)?;
                if mode == InnerMode::Write {
                    acc.write(pa2, va2 + 1)?;
                    acc.write(pb2, vb2 + 1)?;
                }
                inner_obs = va2;
                Ok(if va1 == vb1 && va2 == vb2 {
                    va1
                } else {
                    POISON
                })
            });
            if r == POISON {
                torn = Some(format!(
                    "composed writer {tid} saw a torn pair (outer {p1} / inner {p2})"
                ));
                break;
            }
            if lin {
                t.trace.push(EventKind::Mark {
                    label: labels::WRITE,
                    a: reg_of(0, p1, spec.pairs),
                    b: r,
                });
                t.trace.push(EventKind::Mark {
                    label: if mode == InnerMode::Write {
                        labels::WRITE
                    } else {
                        labels::READ
                    },
                    a: reg_of(1, p2, spec.pairs),
                    b: inner_obs,
                });
                t.trace.push(EventKind::Mark {
                    label: labels::RET,
                    a: seq,
                    b: 0,
                });
            }
            incr[p1] += 1;
            if mode == InnerMode::Write {
                incr[spec.pairs + p2] += 1;
            }
            writer_ops += 1;
            continue;
        }

        // Plain single-lock section on one of the two locks.
        let on_inner = rng.next() % 2 == 1;
        let (lock, bank, ba, bb): (&dyn RwSync, usize, _, _) = if on_inner {
            (&pair.inner, 1, a2, b2)
        } else {
            (&pair.outer, 0, a1, b1)
        };
        let is_write = rng.next() % 100 < u64::from(spec.write_pct);
        let p = (rng.next() as usize) % spec.pairs;
        t.trace.push(EventKind::Mark {
            label: "torture-op",
            a: reg_of(bank, p, spec.pairs),
            b: u64::from(is_write),
        });
        if is_write {
            let (pa, pb) = (ba[p], bb[p]);
            if lin {
                t.trace.push(EventKind::Mark {
                    label: labels::INV,
                    a: seq,
                    b: 1,
                });
            }
            let r = lock.write_section(&mut t, SEC_WRITE, &mut |acc| {
                let a = acc.read(pa)?;
                let b = acc.read(pb)?;
                acc.write(pa, a + 1)?;
                acc.write(pb, b + 1)?;
                Ok(if a == b { a } else { POISON })
            });
            if r == POISON {
                torn = Some(format!(
                    "writer {tid} entered on torn pair {p} (bank {bank})"
                ));
                break;
            }
            if lin {
                t.trace.push(EventKind::Mark {
                    label: labels::WRITE,
                    a: reg_of(bank, p, spec.pairs),
                    b: r,
                });
                t.trace.push(EventKind::Mark {
                    label: labels::RET,
                    a: seq,
                    b: 0,
                });
            }
            incr[bank * spec.pairs + p] += 1;
            writer_ops += 1;
        } else {
            let span = spec.reader_span.min(spec.pairs).max(1);
            let start = (rng.next() as usize) % spec.pairs;
            if lin {
                t.trace.push(EventKind::Mark {
                    label: labels::INV,
                    a: seq,
                    b: 0,
                });
            }
            let r = lock.read_section(&mut t, SEC_READ, &mut |acc| {
                obs.clear();
                let mut sum = 0u64;
                for k in 0..span {
                    let i = (start + k) % spec.pairs;
                    let a = acc.read(ba[i])?;
                    let b = acc.read(bb[i])?;
                    if a != b {
                        return Ok(POISON);
                    }
                    obs.push((i, a));
                    sum = sum.wrapping_add(a);
                }
                Ok(sum)
            });
            if r == POISON {
                torn = Some(format!(
                    "reader {tid} saw a torn pair near {start} (bank {bank})"
                ));
                break;
            }
            if lin {
                for &(i, v) in &obs {
                    t.trace.push(EventKind::Mark {
                        label: labels::READ,
                        a: reg_of(bank, i, spec.pairs),
                        b: v,
                    });
                }
                t.trace.push(EventKind::Mark {
                    label: labels::RET,
                    a: seq,
                    b: 0,
                });
            }
            reader_ops += 1;
        }
    }

    ThreadOut {
        incr,
        reader_ops,
        writer_ops,
        torn,
        trace: t.trace.snapshot(),
        stats: t.stats,
    }
}

/// Everything a finished case execution leaves behind, owned (no borrows
/// of the torn-down `Htm`), so the runner can execute a case twice and
/// compare the remains byte for byte.
#[derive(Debug)]
struct CaseRun {
    outs: Vec<ThreadOut>,
    /// Final `(A[p], B[p])` cell values per mirror pair.
    pairs_final: Vec<(u64, u64)>,
    /// Outcome of the lock's own post-run invariant check.
    quiescence: Result<(), String>,
    /// The scheduler's recorded decision trace (deterministic runs only;
    /// empty under the free-running scheduler).
    schedule: Vec<htm_sim::DecisionRecord>,
    /// Where a replaying policy stopped matching its recorded schedule.
    sched_divergence: Option<String>,
}

impl CaseRun {
    fn traces(&self) -> Vec<ThreadTrace> {
        self.outs.iter().map(|o| o.trace.clone()).collect()
    }
}

/// Derives the per-case HTM configuration from a spec and base seed:
/// thread count and workload seed are overwritten, and deterministic cases
/// get their schedule seed resolved (`TORTURE_SCHED_SEED` override, else a
/// nonzero seed pinned in the spec, else derivation from the case seed).
/// Returns `(config, case_seed, sched_seed)`.
fn resolve_case(spec: &TortureSpec, base_seed: u64) -> (HtmConfig, u64, Option<u64>) {
    let case_seed = mix64(base_seed ^ fnv1a(&spec.name));
    let mut cfg = spec.htm.clone();
    cfg.max_threads = spec.threads;
    cfg.seed = case_seed;
    let sched_seed = match &cfg.scheduler {
        SchedulerKind::Deterministic { schedule_seed } => {
            // Priority: env override > a nonzero seed pinned in the spec >
            // per-case derivation. The matrices leave the spec seed at 0 so
            // every case explores its own interleaving family per base seed.
            let s = sched_seed_override().unwrap_or(if *schedule_seed != 0 {
                *schedule_seed
            } else {
                derived_sched_seed(case_seed)
            });
            cfg.scheduler = SchedulerKind::Deterministic { schedule_seed: s };
            Some(s)
        }
        // Policy-driven schedules (the explorer) are deterministic but not
        // seed-addressed: their replay artifact is the decision trace.
        SchedulerKind::DeterministicPolicy { .. } => None,
        SchedulerKind::Os => None,
    };
    (cfg, case_seed, sched_seed)
}

/// Whether a resolved case config serializes execution (any deterministic
/// scheduler, seeded or policy-driven).
fn is_serialized(cfg: &HtmConfig) -> bool {
    !matches!(cfg.scheduler, SchedulerKind::Os)
}

/// Builds the simulator, runs the workers, and collects everything the
/// oracle needs as owned data. Infallible: violations are *judged* later
/// by [`judge_case`], never during execution.
fn execute_case(
    spec: &TortureSpec,
    htm_cfg: &HtmConfig,
    case_seed: u64,
    build: &dyn Fn(&Htm) -> Box<dyn RwSync>,
) -> CaseRun {
    htm_cfg.validate().expect("torture case HtmConfig invalid");
    match spec.workload {
        Workload::Mirror => execute_mirror(spec, htm_cfg, case_seed, build),
        Workload::CrossBank(nesting) => execute_cross(spec, htm_cfg, case_seed, nesting),
        Workload::ServerKv => execute_server(spec, htm_cfg, case_seed),
    }
}

fn execute_mirror(
    spec: &TortureSpec,
    htm_cfg: &HtmConfig,
    case_seed: u64,
    build: &dyn Fn(&Htm) -> Box<dyn RwSync>,
) -> CaseRun {
    let cells_per_line = htm_cfg.cells_per_line as usize;
    let cells = (2 * spec.pairs + 8 * spec.threads + 128) * cells_per_line;
    let htm = Htm::new(htm_cfg.clone(), cells);
    let lock = build(&htm);
    let bank_a = htm.memory().alloc_padded(spec.pairs);
    let bank_b = htm.memory().alloc_padded(spec.pairs);

    let outs: Vec<ThreadOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..spec.threads)
            .map(|tid| {
                let (lock, htm, bank_a, bank_b) = (&*lock, &htm, &bank_a[..], &bank_b[..]);
                s.spawn(move || worker(lock, htm, spec, bank_a, bank_b, case_seed, tid))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("torture worker panicked"))
            .collect()
    });

    let mem = htm.memory();
    let pairs_final = (0..spec.pairs)
        .map(|p| (mem.peek(bank_a[p]), mem.peek(bank_b[p])))
        .collect();
    let quiescence = lock
        .check_quiescent(mem)
        .map_err(|e| e.to_string())
        .and_then(|()| check_slots_released(&htm));
    let schedule = htm.scheduler().decision_trace().unwrap_or_default();
    let sched_divergence = htm.scheduler().schedule_divergence();
    CaseRun {
        outs,
        pairs_final,
        quiescence,
        schedule,
        sched_divergence,
    }
}

/// Cross-bank execution: two SpRWL locks over disjoint mirror banks. The
/// oracle data generalizes cleanly — `pairs_final` and each thread's
/// per-pair increment counts simply cover `2 * pairs` entries (outer bank
/// first), and every end-state invariant applies unchanged.
fn execute_cross(
    spec: &TortureSpec,
    htm_cfg: &HtmConfig,
    case_seed: u64,
    nesting: CrossNesting,
) -> CaseRun {
    let LockKind::Sprwl(lock_cfg) = &spec.lock else {
        panic!(
            "cross-bank torture case `{}` requires LockKind::Sprwl",
            spec.name
        );
    };
    let cells_per_line = htm_cfg.cells_per_line as usize;
    let cells = (4 * spec.pairs + 16 * spec.threads + 256) * cells_per_line;
    let htm = Htm::new(htm_cfg.clone(), cells);
    let pair = SpRwlPair::new(&htm, lock_cfg.clone(), lock_cfg.clone());
    let banks: [Vec<htm_sim::CellId>; 4] = [
        htm.memory().alloc_padded(spec.pairs),
        htm.memory().alloc_padded(spec.pairs),
        htm.memory().alloc_padded(spec.pairs),
        htm.memory().alloc_padded(spec.pairs),
    ];

    let outs: Vec<ThreadOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..spec.threads)
            .map(|tid| {
                let (pair, htm, banks) = (&pair, &htm, &banks);
                s.spawn(move || worker_cross(pair, htm, spec, nesting, banks, case_seed, tid))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("torture worker panicked"))
            .collect()
    });

    let mem = htm.memory();
    let mut pairs_final = Vec::with_capacity(2 * spec.pairs);
    for bank in [0, 2] {
        for (&a, &b) in banks[bank].iter().zip(&banks[bank + 1]) {
            pairs_final.push((mem.peek(a), mem.peek(b)));
        }
    }
    let quiescence = pair
        .check_quiescent(mem)
        .map_err(|e| e.to_string())
        .and_then(|()| check_slots_released(&htm));
    let schedule = htm.scheduler().decision_trace().unwrap_or_default();
    let sched_divergence = htm.scheduler().schedule_divergence();
    CaseRun {
        outs,
        pairs_final,
        quiescence,
        schedule,
        sched_divergence,
    }
}

/// Sharded-KV service execution: drives the entire `sprwl-server` stack
/// under this case's fault model and resolved schedule seed, then maps
/// the run onto the oracle's shape. Shard `p` plays mirror pair `p`:
/// `pairs_final[p]` holds the shard's final counter sum on both sides and
/// each worker's `incr[p]` its committed increments routed there, so a
/// store/increment imbalance surfaces through the same lost/ghost-update
/// check as mirror-bank divergence. Worker stats, quiescence (shard locks
/// plus slot release), the decision trace, and the recorded `lin-*`
/// history all feed the shared judges unchanged.
fn execute_server(spec: &TortureSpec, htm_cfg: &HtmConfig, case_seed: u64) -> CaseRun {
    let LockKind::Sprwl(lock_cfg) = &spec.lock else {
        panic!(
            "server-kv torture case `{}` requires LockKind::Sprwl",
            spec.name
        );
    };
    let SchedulerKind::Deterministic { schedule_seed } = htm_cfg.scheduler else {
        panic!(
            "server-kv torture case `{}` is deterministic-only (the service parks \
             futures on scheduler yield points)",
            spec.name
        );
    };
    // Mirror `write_pct` onto the redis mix: the non-GET share splits
    // 3:1 between single-key SETs and multi-key MSETs.
    let write_pct = spec.write_pct.min(90);
    let mut server = KvServerConfig {
        shards: spec.pairs,
        workers: spec.threads,
        warmup_ops: 8,
        ops_per_worker: spec.ops_per_thread,
        seed: case_seed,
        schedule_seed,
        spec: RedisSpec {
            keyspace: spec.pairs as u64 * 64,
            get_pct: 100 - write_pct,
            set_pct: write_pct - write_pct / 4,
            mset_keys: 3,
            ..RedisSpec::service_default()
        },
        tracking: lock_cfg.reader_tracking,
        buckets_per_shard: 32,
        payload_cells: 16,
        trace: TraceConfig::Off,
        lin_marks: spec.lincheck,
    };
    server.trace = if spec.lincheck {
        server.lin_ring()
    } else {
        worker_trace(spec)
    };
    let run = sprwl_server::run_det_with(&server, htm_cfg.clone());

    let pairs_final: Vec<(u64, u64)> = run
        .dump
        .iter()
        .map(|shard| {
            let sum: u64 = shard.iter().map(|&(_, v)| v).sum();
            (sum, sum)
        })
        .collect();
    let mut traces = run.traces.into_iter();
    let outs: Vec<ThreadOut> = run
        .worker_stats
        .into_iter()
        .zip(run.worker_increments)
        .map(|(stats, incr)| {
            let reader_ops: u64 = CommitMode::ALL
                .iter()
                .map(|&m| stats.commits_by(Role::Reader, m))
                .sum();
            let writer_ops: u64 = CommitMode::ALL
                .iter()
                .map(|&m| stats.commits_by(Role::Writer, m))
                .sum();
            ThreadOut {
                incr,
                reader_ops,
                writer_ops,
                torn: None,
                stats,
                trace: traces.next().expect("one trace per service worker"),
            }
        })
        .collect();
    CaseRun {
        outs,
        pairs_final,
        quiescence: run.quiescence,
        schedule: run.schedule,
        sched_divergence: run.sched_divergence,
    }
}

/// The slot-registry leg of the quiescence oracle: after every worker has
/// joined (dropping its `ThreadCtx`, churned or not), no thread context
/// may remain claimed — a leftover claim is a leaked registration.
fn check_slots_released(htm: &Htm) -> Result<(), String> {
    match htm.active_threads() {
        0 => Ok(()),
        n => Err(format!(
            "{n} thread context(s) still claimed after all workers joined"
        )),
    }
}

/// The oracle: checks every invariant against a finished run and returns
/// either the aggregate summary or the first violation's detail string.
fn check_case(run: &CaseRun) -> Result<RunSummary, String> {
    // 1. Torn reads observed by committed sections.
    for o in &run.outs {
        if let Some(t) = &o.torn {
            return Err(format!("torn read: {t}"));
        }
    }

    // 2. Mirror pairs at rest: banks must match, and each counter must
    //    equal the number of committed writer operations on that pair
    //    (fewer = lost update, more = leaked speculative write).
    let mut final_increments = 0u64;
    for (p, &(a, b)) in run.pairs_final.iter().enumerate() {
        if a != b {
            return Err(format!("pair {p} torn at rest: A={a}, B={b}"));
        }
        let expected: u64 = run.outs.iter().map(|o| o.incr[p]).sum();
        if a != expected {
            let kind = if a < expected {
                "lost update"
            } else {
                "ghost update"
            };
            return Err(format!(
                "{kind} on pair {p}: counter {a}, committed increments {expected}"
            ));
        }
        final_increments += a;
    }

    // 3. Quiescence: the lock's own post-run invariants.
    if let Err(e) = &run.quiescence {
        return Err(format!("quiescence check failed: {e}"));
    }

    // 4. Stats accounting: commits match the operations each thread
    //    issued, and per-cause abort counts sum to the abort total.
    let mut summary = RunSummary {
        final_increments,
        ..RunSummary::default()
    };
    for (tid, o) in run.outs.iter().enumerate() {
        let reader_commits: u64 = CommitMode::ALL
            .iter()
            .map(|&m| o.stats.commits_by(Role::Reader, m))
            .sum();
        let writer_commits: u64 = CommitMode::ALL
            .iter()
            .map(|&m| o.stats.commits_by(Role::Writer, m))
            .sum();
        if reader_commits != o.reader_ops {
            return Err(format!(
                "thread {tid}: {reader_commits} reader commits recorded for {} reader ops",
                o.reader_ops
            ));
        }
        if writer_commits != o.writer_ops {
            return Err(format!(
                "thread {tid}: {writer_commits} writer commits recorded for {} writer ops",
                o.writer_ops
            ));
        }
        if o.stats.total_commits() != o.reader_ops + o.writer_ops {
            return Err(format!(
                "thread {tid}: total_commits {} != ops issued {}",
                o.stats.total_commits(),
                o.reader_ops + o.writer_ops
            ));
        }
        let by_cause: u64 = sprwl_locks::AbortCause::ALL
            .iter()
            .map(|&c| o.stats.aborts_of(c))
            .sum();
        if by_cause != o.stats.total_aborts() {
            return Err(format!(
                "thread {tid}: per-cause aborts {by_cause} != total_aborts {}",
                o.stats.total_aborts()
            ));
        }
        summary.reader_commits += reader_commits;
        summary.writer_commits += writer_commits;
        summary.speculative_commits +=
            o.stats.commits_in(CommitMode::Htm) + o.stats.commits_in(CommitMode::Rot);
        summary.aborts += o.stats.total_aborts();
    }

    Ok(summary)
}

/// Runs the linearizability checker over a finished run's recorded
/// history. `TORTURE_LIN_BUDGET` overrides the node budget — the hook the
/// exit-code-contract tests use to force the `Unknown` path (which must
/// stay a *verdict*, never a violation).
fn lincheck_verdict(run: &CaseRun) -> Result<Verdict, String> {
    let traces = run.traces();
    let hist = History::from_traces(&traces)
        .map_err(|e| format!("lincheck: malformed recorded history: {e}"))?;
    let mut cfg = CheckConfig::default();
    if let Some(budget) = parse_seed_var("TORTURE_LIN_BUDGET") {
        cfg.max_nodes = budget;
    }
    Ok(check(&hist, &cfg))
}

/// The full verdict on a finished run: the end-state oracle first, then —
/// for history-recording cases — the linearizability checker as a second,
/// independent judge. A non-linearizable history is a violation even when
/// every end-state invariant holds (that is the checker's whole point);
/// when the oracle already failed, the checker's verdict is appended to
/// the detail as corroborating evidence.
fn judge_case(spec: &TortureSpec, run: &CaseRun) -> Result<RunSummary, String> {
    let oracle = check_case(run);
    if !spec.lincheck {
        return oracle;
    }
    match oracle {
        Ok(mut summary) => {
            match lincheck_verdict(run)? {
                Verdict::Linearizable => summary.lincheck = LincheckStatus::Linearizable,
                Verdict::Unknown(_) => summary.lincheck = LincheckStatus::Unknown,
                Verdict::NonLinearizable(d) => {
                    return Err(format!("non-linearizable history: {d}"))
                }
            }
            Ok(summary)
        }
        Err(mut detail) => {
            let verdict = match lincheck_verdict(run) {
                Ok(v) => v.to_string(),
                Err(e) => e,
            };
            detail.push_str(&format!("\n  lincheck verdict: {verdict}"));
            Err(detail)
        }
    }
}

/// Compares a deterministic case's original failing run against its
/// immediate in-process replay and renders the verdict that gets appended
/// to the violation detail: bit-exact (the replay command will re-trigger
/// the bug) or the first trace divergence (something escaped the
/// scheduler's control, which is itself a harness bug worth chasing).
fn determinism_note(
    first: &CaseRun,
    second: &CaseRun,
    second_detail: Option<&str>,
    first_detail: &str,
) -> String {
    let a = export::jsonl(&first.traces());
    let b = export::jsonl(&second.traces());
    let outcome = match second_detail {
        Some(d) if d == first_detail => "re-triggered the same violation".to_string(),
        Some(d) => format!("violated differently: {d}"),
        None => "passed the oracle".to_string(),
    };
    match first_divergence(&a, &b) {
        None => format!(
            "\n  determinism: in-process replay was bit-exact ({} trace lines) and {outcome}",
            a.lines().count()
        ),
        Some((n, la, lb)) => format!(
            "\n  determinism: in-process replay DIVERGED at trace line {n} (and {outcome})\n    first : {la}\n    second: {lb}\n    (a thread is blocking or timing outside the scheduler's view)"
        ),
    }
}

/// Runs one torture case under the given base seed and checks every
/// invariant the oracle knows about.
///
/// Deterministic cases that fail are immediately re-executed with the same
/// seeds and the violation report gains a determinism note: bit-exact
/// replay confirmation, or the first trace divergence.
///
/// # Errors
///
/// The first [`Violation`] found, with replay instructions.
///
/// # Panics
///
/// Panics on harness misconfiguration (invalid [`HtmConfig`], a worker
/// thread panicking) — not on lock bugs, which are reported as `Err`.
// A `Violation` is constructed at most once per case, on the cold path
// that ends it — boxing it would complicate every consumer for nothing.
#[allow(clippy::result_large_err)]
pub fn run_case(spec: &TortureSpec, base_seed: u64) -> Result<RunSummary, Violation> {
    run_case_with(spec, base_seed, &|htm| spec.lock.build(htm))
}

/// Like [`run_case`], but instantiates the lock through `build` instead of
/// [`TortureSpec::lock`] — the hook the harness's own self-tests use to
/// feed a deliberately broken lock through the oracle and prove the oracle
/// catches it.
///
/// # Errors
///
/// The first [`Violation`] found, with replay instructions.
///
/// # Panics
///
/// As for [`run_case`].
#[allow(clippy::result_large_err)]
pub fn run_case_with(
    spec: &TortureSpec,
    base_seed: u64,
    build: &dyn Fn(&Htm) -> Box<dyn RwSync>,
) -> Result<RunSummary, Violation> {
    let (htm_cfg, case_seed, sched_seed) = resolve_case(spec, base_seed);
    let run = execute_case(spec, &htm_cfg, case_seed, build);
    match judge_case(spec, &run) {
        Ok(summary) => Ok(summary),
        Err(mut detail) => {
            if is_serialized(&htm_cfg) {
                let rerun = execute_case(spec, &htm_cfg, case_seed, build);
                let rerun_detail = judge_case(spec, &rerun).err();
                detail.push_str(&determinism_note(
                    &run,
                    &rerun,
                    rerun_detail.as_deref(),
                    &detail,
                ));
            }
            let mut v = Violation {
                case: spec.name.clone(),
                seed: case_seed,
                base_seed,
                sched_seed,
                detail,
                trace: worker_trace(spec).label(),
                postmortem: None,
            };
            v.postmortem = write_postmortem(&v, &run.traces());
            Err(v)
        }
    }
}

/// Everything a case leaves behind, owned and comparable: the raw material
/// for determinism assertions (run a case twice, require equality) and for
/// golden-trace regression tests.
#[derive(Debug, Clone)]
pub struct CaseArtifacts {
    /// The seed the case ran under (already case-derived).
    pub case_seed: u64,
    /// The resolved schedule seed for deterministic cases, `None` otherwise.
    pub sched_seed: Option<u64>,
    /// Per-thread event traces (ring-buffered tails, in tid order).
    pub traces: Vec<ThreadTrace>,
    /// Per-thread session statistics, in tid order.
    pub stats: Vec<SessionStats>,
    /// Final `(A[p], B[p])` cell values per mirror pair.
    pub pairs_final: Vec<(u64, u64)>,
    /// What the oracle concluded: the summary, or the violation detail.
    pub outcome: Result<RunSummary, String>,
    /// The scheduler's recorded decision trace — one entry per branch
    /// point. Empty for free-running cases. This is the replay artifact
    /// the explorer serializes on a violation.
    pub schedule: Vec<htm_sim::DecisionRecord>,
    /// For replayed schedules: where the live run stopped matching the
    /// recorded decision trace (`None` = faithful, the bit-exactness
    /// precondition).
    pub sched_divergence: Option<String>,
}

impl CaseArtifacts {
    /// The per-thread traces as one JSONL dump (what the golden-trace test
    /// commits and what `scripts/diff_traces.py` consumes).
    pub fn trace_jsonl(&self) -> String {
        export::jsonl(&self.traces)
    }
}

/// Runs a case and returns everything it left behind instead of judging
/// it. Two calls with the same `(spec, base_seed, TORTURE_SCHED_SEED)`
/// under the deterministic scheduler must produce equal artifacts — that
/// is the bit-exactness contract the determinism tests enforce.
pub fn run_case_artifacts(spec: &TortureSpec, base_seed: u64) -> CaseArtifacts {
    let (htm_cfg, case_seed, sched_seed) = resolve_case(spec, base_seed);
    let run = execute_case(spec, &htm_cfg, case_seed, &|htm| spec.lock.build(htm));
    let outcome = judge_case(spec, &run);
    CaseArtifacts {
        case_seed,
        sched_seed,
        traces: run.traces(),
        stats: run.outs.iter().map(|o| o.stats.clone()).collect(),
        pairs_final: run.pairs_final.clone(),
        outcome,
        schedule: run.schedule.clone(),
        sched_divergence: run.sched_divergence.clone(),
    }
}

/// The SpRWL variants the acceptance matrix must cover:
/// {Flags, Snzi, Adaptive, Bravo} × {NoSched, Full}.
pub fn sprwl_matrix_configs() -> Vec<(String, SprwlConfig)> {
    use sprwl::{ReaderTracking, Scheduling};
    let mut out = Vec::new();
    for (sname, sched) in [("nosched", Scheduling::NoSched), ("full", Scheduling::Full)] {
        for (tname, tracking) in [
            ("flags", ReaderTracking::Flags),
            ("snzi", ReaderTracking::Snzi),
            ("adaptive", ReaderTracking::Adaptive),
            ("bravo", ReaderTracking::Bravo),
        ] {
            let cfg = SprwlConfig {
                scheduling: sched,
                reader_tracking: tracking,
                ..SprwlConfig::default()
            };
            out.push((format!("sprwl-{tname}-{sname}"), cfg));
        }
    }
    out
}

/// The default torture matrix: every SpRWL acceptance variant at full
/// depth, the §3.3 versioned-SGL variant, every baseline lock, and the
/// fault-axis sweeps (interrupts, tiny capacity, responder-wins conflicts,
/// schedule shake).
///
/// `ops_per_thread` scales the whole matrix; with `threads = 4`,
/// `ops_per_thread = 250` gives the 1000-iteration acceptance floor per
/// lock configuration.
pub fn default_matrix(threads: usize, ops_per_thread: usize) -> Vec<TortureSpec> {
    use htm_sim::{CapacityProfile, ConflictPolicy};

    let base = |name: &str, lock: LockKind, htm: HtmConfig| TortureSpec {
        name: name.to_owned(),
        lock,
        htm,
        threads,
        ops_per_thread,
        pairs: 8,
        write_pct: 30,
        reader_span: 4,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: false,
        churn: false,
    };
    let quiet = HtmConfig::default();
    let shaken = HtmConfig {
        sched_shake_prob: 0.02,
        ..HtmConfig::default()
    };

    let mut m = Vec::new();

    // Acceptance grid: {Flags, Snzi, Adaptive} × {NoSched, Full}, with
    // schedule shake on so seeds explore different interleaving families.
    for (name, cfg) in sprwl_matrix_configs() {
        m.push(base(&name, LockKind::Sprwl(cfg), shaken.clone()));
    }

    // §3.3 versioned SGL under writer-heavy load (fallback pressure).
    let versioned = SprwlConfig {
        versioned_sgl: true,
        ..SprwlConfig::default()
    };
    let mut spec = base(
        "sprwl-versioned-sgl",
        LockKind::Sprwl(versioned),
        shaken.clone(),
    );
    spec.write_pct = 70;
    m.push(spec);

    // Force the uninstrumented reader path (flag/unflag, Readers_Wait,
    // commit-time W-checkR aborts): with HTM probing on, the tiny torture
    // sections otherwise all fit in hardware.
    let unins_readers = SprwlConfig {
        readers_try_htm: false,
        ..SprwlConfig::default()
    };
    m.push(base(
        "sprwl-unins-readers",
        LockKind::Sprwl(unins_readers.clone()),
        shaken.clone(),
    ));

    // BRAVO bias with uninstrumented readers: the bias word, the visible
    // table and the revocation drain sit on every reader/writer path
    // (with HTM probing on, short readers commit speculatively and never
    // touch the bias machinery).
    let bravo_unins = SprwlConfig {
        readers_try_htm: false,
        ..SprwlConfig::with_bravo()
    };
    m.push(base(
        "sprwl-bravo-unins-readers",
        LockKind::Sprwl(bravo_unins.clone()),
        shaken.clone(),
    ));

    // Mid-case register/run/deregister: every worker swaps its thread
    // context halfway through, under the trackers with per-thread state
    // (BRAVO visible slots, reader state array) and the biased baseline.
    for (name, lock) in [
        ("churn-sprwl-bravo", LockKind::Sprwl(bravo_unins.clone())),
        (
            "churn-sprwl-snzi",
            LockKind::Sprwl(SprwlConfig::with_snzi()),
        ),
        ("churn-brlock-bias", LockKind::BrLockBias),
    ] {
        let mut spec = base(name, lock, shaken.clone());
        spec.churn = true;
        m.push(spec);
    }

    // Versioned SGL with uninstrumented readers *and* interrupt injection:
    // interrupts exhaust writer retry budgets, driving real fallback
    // acquisitions — the only way the §3.3 bypass protocol runs in anger.
    let versioned_unins = SprwlConfig {
        versioned_sgl: true,
        ..unins_readers
    };
    m.push(base(
        "sprwl-versioned-int5",
        LockKind::Sprwl(versioned_unins),
        HtmConfig {
            interrupt_prob: 0.05,
            ..shaken.clone()
        },
    ));

    // Fault axes on the paper-default SpRWL configuration.
    for (tag, interrupt_prob) in [("int1", 0.01), ("int5", 0.05)] {
        m.push(base(
            &format!("sprwl-full-{tag}"),
            LockKind::Sprwl(SprwlConfig::default()),
            HtmConfig {
                interrupt_prob,
                ..shaken.clone()
            },
        ));
    }
    m.push(base(
        "sprwl-full-tiny-capacity",
        LockKind::Sprwl(SprwlConfig::default()),
        HtmConfig {
            capacity: CapacityProfile::TINY,
            ..shaken.clone()
        },
    ));
    m.push(base(
        "sprwl-full-responder-wins",
        LockKind::Sprwl(SprwlConfig::default()),
        HtmConfig {
            conflict_policy: ConflictPolicy::ResponderWins,
            ..shaken.clone()
        },
    ));
    m.push(base(
        "sprwl-full-power8",
        LockKind::Sprwl(SprwlConfig::default()),
        HtmConfig {
            capacity: CapacityProfile::POWER8_SIM,
            ..shaken.clone()
        },
    ));

    // Baselines: same workload, same oracle.
    m.push(base("tle", LockKind::Tle, shaken.clone()));
    m.push(base(
        "tle-int5",
        LockKind::Tle,
        HtmConfig {
            interrupt_prob: 0.05,
            ..shaken.clone()
        },
    ));
    m.push(base(
        "rwle-power8",
        LockKind::RwLe,
        HtmConfig {
            capacity: CapacityProfile::POWER8_SIM,
            ..shaken.clone()
        },
    ));
    m.push(base("mcs-rwl", LockKind::McsRw, quiet.clone()));
    m.push(base("brlock", LockKind::BrLock, quiet.clone()));
    m.push(base("brlock-bias", LockKind::BrLockBias, quiet.clone()));
    m.push(base("phase-fair", LockKind::PhaseFair, quiet.clone()));
    m.push(base("passive", LockKind::Passive, quiet.clone()));
    m.push(base("pthread-rw", LockKind::PthreadRw, quiet));

    // Cross-lock composition: two SpRWLs, plain sections on each plus
    // composed sections in both nestings, with the full history checked
    // for linearizability over the two-lock product model.
    for (name, nesting, htm) in [
        ("cross-rw", CrossNesting::ReadInWriter, shaken.clone()),
        ("cross-ww", CrossNesting::WriteInWriter, shaken.clone()),
        (
            "cross-rw-int5",
            CrossNesting::ReadInWriter,
            HtmConfig {
                interrupt_prob: 0.05,
                ..shaken.clone()
            },
        ),
        (
            "cross-ww-int5",
            CrossNesting::WriteInWriter,
            HtmConfig {
                interrupt_prob: 0.05,
                ..shaken
            },
        ),
    ] {
        let mut spec = base(name, LockKind::Sprwl(SprwlConfig::default()), htm);
        spec.workload = Workload::CrossBank(nesting);
        spec.lincheck = true;
        m.push(spec);
    }

    m
}

/// The deterministic torture matrix: the same lock coverage as
/// [`default_matrix`] but serialized under
/// [`SchedulerKind::Deterministic`], so every case's interleaving is a
/// pure function of its seeds and violations replay bit-for-bit.
///
/// Each spec leaves `schedule_seed` at 0, which tells the runner to derive
/// a per-case seed (see [`derived_sched_seed`]); `TORTURE_SCHED_SEED` or a
/// nonzero spec seed pin it instead. Schedule shake is off — the deterministic
/// scheduler ignores it, and its job (exploring interleaving families per
/// seed) is done by the schedule seed itself.
///
/// `pthread-rw` is deliberately absent: [`LockKind::PthreadRw`] blocks on
/// a real OS condvar the scheduler cannot see, which would deadlock a
/// fully serialized schedule. It keeps its coverage in the free-running
/// matrix.
pub fn det_matrix(threads: usize, ops_per_thread: usize) -> Vec<TortureSpec> {
    use htm_sim::CapacityProfile;

    let det = HtmConfig {
        scheduler: SchedulerKind::Deterministic { schedule_seed: 0 },
        sched_shake_prob: 0.0,
        ..HtmConfig::default()
    };
    // Every deterministic case records its operation history and runs the
    // linearizability checker as a second verdict — the interleaving is a
    // pure function of the seeds, so the history (and the verdict) is too.
    let base = |name: String, lock: LockKind, htm: HtmConfig| TortureSpec {
        name,
        lock,
        htm,
        threads,
        ops_per_thread,
        pairs: 8,
        write_pct: 30,
        reader_span: 4,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: true,
        churn: false,
    };

    let mut m = Vec::new();

    for (name, cfg) in sprwl_matrix_configs() {
        m.push(base(
            format!("det-{name}"),
            LockKind::Sprwl(cfg),
            det.clone(),
        ));
    }

    let versioned = SprwlConfig {
        versioned_sgl: true,
        ..SprwlConfig::default()
    };
    let mut spec = base(
        "det-sprwl-versioned-sgl".into(),
        LockKind::Sprwl(versioned),
        det.clone(),
    );
    spec.write_pct = 70;
    m.push(spec);

    let unins_readers = SprwlConfig {
        readers_try_htm: false,
        ..SprwlConfig::default()
    };
    m.push(base(
        "det-sprwl-unins-readers".into(),
        LockKind::Sprwl(unins_readers),
        det.clone(),
    ));

    let bravo_unins = SprwlConfig {
        readers_try_htm: false,
        ..SprwlConfig::with_bravo()
    };
    m.push(base(
        "det-sprwl-bravo-unins-readers".into(),
        LockKind::Sprwl(bravo_unins.clone()),
        det.clone(),
    ));

    // Mid-case register/run/deregister under the serialized scheduler —
    // the dynamic-registration acceptance cases. The churn gap itself
    // runs off-schedule (a deregistered thread is invisible to the
    // scheduler), so these cases assert invariants, not bit-exactness.
    for (name, lock) in [
        ("det-churn-sprwl-bravo", LockKind::Sprwl(bravo_unins)),
        (
            "det-churn-sprwl-snzi",
            LockKind::Sprwl(SprwlConfig::with_snzi()),
        ),
        ("det-churn-brlock-bias", LockKind::BrLockBias),
    ] {
        let mut spec = base(name.into(), lock, det.clone());
        spec.churn = true;
        m.push(spec);
    }

    // Fault axes stay meaningful under determinism: interrupt injection
    // and capacity pressure both draw from seeded streams, so a failing
    // seed replays the same aborts at the same points.
    m.push(base(
        "det-sprwl-full-int5".into(),
        LockKind::Sprwl(SprwlConfig::default()),
        HtmConfig {
            interrupt_prob: 0.05,
            ..det.clone()
        },
    ));
    m.push(base(
        "det-sprwl-full-tiny-capacity".into(),
        LockKind::Sprwl(SprwlConfig::default()),
        HtmConfig {
            capacity: CapacityProfile::TINY,
            ..det.clone()
        },
    ));

    // The capacity-stretching acceptance cases (TINY + `StretchPolicy`
    // on). `det-capacity-rot`'s writers scan four extra pairs before
    // their increment — ten padded read lines against TINY's four-line
    // read budget guarantees the HTM rung aborts on capacity, while the
    // 2-line write set still fits the ROT budget, so every writer must
    // land on the rollback-only rung. `det-capacity-split`'s spanning
    // writers overflow the ROT *write* budget too and run as ordered
    // sub-transactions under the fallback ticket. The mirror oracle plus
    // the lincheck verdict double-check the DESIGN §6i claim that
    // neither rung ever lets a reader observe a torn pair or a
    // half-applied span.
    let mut rot = base(
        "det-capacity-rot".into(),
        LockKind::Sprwl(SprwlConfig::stretching()),
        HtmConfig {
            capacity: CapacityProfile::TINY,
            ..det.clone()
        },
    );
    rot.writer_scan = 4;
    m.push(rot);
    let mut split = base(
        "det-capacity-split".into(),
        LockKind::Sprwl(SprwlConfig::stretching()),
        HtmConfig {
            capacity: CapacityProfile::TINY,
            ..det.clone()
        },
    );
    split.writer_span = 3;
    m.push(split);

    m.push(base("det-tle".into(), LockKind::Tle, det.clone()));
    m.push(base(
        "det-rwle-power8".into(),
        LockKind::RwLe,
        HtmConfig {
            capacity: CapacityProfile::POWER8_SIM,
            ..det.clone()
        },
    ));
    m.push(base("det-mcs-rwl".into(), LockKind::McsRw, det.clone()));
    m.push(base("det-brlock".into(), LockKind::BrLock, det.clone()));
    m.push(base(
        "det-brlock-bias".into(),
        LockKind::BrLockBias,
        det.clone(),
    ));
    m.push(base(
        "det-phase-fair".into(),
        LockKind::PhaseFair,
        det.clone(),
    ));
    m.push(base("det-passive".into(), LockKind::Passive, det.clone()));

    // Cross-lock composition under the deterministic scheduler: the
    // composed histories replay bit-for-bit, checker verdict included.
    for (name, nesting, htm) in [
        ("det-cross-rw", CrossNesting::ReadInWriter, det.clone()),
        ("det-cross-ww", CrossNesting::WriteInWriter, det.clone()),
        (
            "det-cross-rw-int5",
            CrossNesting::ReadInWriter,
            HtmConfig {
                interrupt_prob: 0.05,
                ..det.clone()
            },
        ),
    ] {
        let mut spec = base(name.into(), LockKind::Sprwl(SprwlConfig::default()), htm);
        spec.workload = Workload::CrossBank(nesting);
        m.push(spec);
    }

    // The sharded async KV service end-to-end (`sprwl-server`): hashed
    // routing over per-shard SpRWLs, future-based acquisition, redis
    // GET/SET/MSET traffic — judged by the shared oracle (per-shard
    // conservation, quiescence, slot release, stats accounting) plus the
    // linearizability checker over the recorded per-op history.
    for (name, cfg) in [
        ("det-server-kv-snzi", SprwlConfig::with_snzi()),
        ("det-server-kv-bravo", SprwlConfig::with_bravo()),
        (
            "det-server-kv-int5",
            SprwlConfig {
                readers_try_htm: false,
                versioned_sgl: true,
                ..SprwlConfig::default()
            },
        ),
    ] {
        let htm = if name.ends_with("int5") {
            HtmConfig {
                interrupt_prob: 0.05,
                ..det.clone()
            }
        } else {
            det.clone()
        };
        let mut spec = base(name.into(), LockKind::Sprwl(cfg), htm);
        spec.workload = Workload::ServerKv;
        spec.pairs = 4; // shard count
        m.push(spec);
    }

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_seeds_differ_and_are_stable() {
        let a1 = mix64(1 ^ fnv1a("case-a"));
        let a2 = mix64(1 ^ fnv1a("case-a"));
        let b = mix64(1 ^ fnv1a("case-b"));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn violation_display_carries_replay_seed() {
        let v = Violation {
            case: "demo".into(),
            seed: 0xABCD,
            base_seed: 0x1234,
            sched_seed: None,
            detail: "something broke".into(),
            trace: "ring:512".into(),
            postmortem: None,
        };
        let s = v.to_string();
        assert!(s.contains("TORTURE_SEED=0x1234"), "{s}");
        assert!(!s.contains("TORTURE_SCHED_SEED"), "{s}");
        assert!(s.contains("demo"), "{s}");
        let with_dump = Violation {
            postmortem: Some(std::path::PathBuf::from("/tmp/x.jsonl")),
            ..v.clone()
        };
        let s = with_dump.to_string();
        assert!(s.contains("postmortem trace: /tmp/x.jsonl"), "{s}");
        let det = Violation {
            sched_seed: Some(0xBEEF),
            ..v
        };
        let s = det.to_string();
        assert!(
            s.contains("TORTURE_SEED=0x1234 TORTURE_SCHED_SEED=0xbeef"),
            "{s}"
        );
    }

    #[test]
    fn first_divergence_finds_the_first_differing_line() {
        assert_eq!(first_divergence("a\nb\nc", "a\nb\nc"), None);
        assert_eq!(
            first_divergence("a\nb\nc", "a\nX\nc"),
            Some((2, "b".into(), "X".into()))
        );
        assert_eq!(
            first_divergence("a\nb", "a"),
            Some((2, "b".into(), "<end of trace>".into()))
        );
        assert_eq!(first_divergence("", ""), None);
    }

    #[test]
    fn derived_sched_seed_is_stable_and_distinct_from_case_seed() {
        let c = mix64(1 ^ fnv1a("case-a"));
        assert_eq!(derived_sched_seed(c), derived_sched_seed(c));
        assert_ne!(derived_sched_seed(c), c);
    }

    #[test]
    fn det_matrix_serializes_every_case_and_skips_pthread() {
        let m = det_matrix(2, 10);
        assert!(!m.is_empty());
        for spec in &m {
            assert!(
                matches!(spec.htm.scheduler, SchedulerKind::Deterministic { .. }),
                "{} is not deterministic",
                spec.name
            );
            assert!(
                !matches!(spec.lock, LockKind::PthreadRw),
                "{} blocks on a real condvar",
                spec.name
            );
            assert!(spec.name.starts_with("det-"), "{}", spec.name);
        }
    }

    #[test]
    fn matrix_covers_acceptance_grid() {
        let m = default_matrix(4, 10);
        for want in [
            "sprwl-flags-nosched",
            "sprwl-flags-full",
            "sprwl-snzi-nosched",
            "sprwl-snzi-full",
            "sprwl-adaptive-nosched",
            "sprwl-adaptive-full",
            "sprwl-bravo-nosched",
            "sprwl-bravo-full",
        ] {
            assert!(m.iter().any(|s| s.name == want), "matrix missing {want}");
        }
    }

    #[test]
    fn matrices_cover_dynamic_thread_churn() {
        for (matrix, prefix) in [
            (default_matrix(4, 10), "churn-"),
            (det_matrix(4, 10), "det-churn-"),
        ] {
            let churned: Vec<&str> = matrix
                .iter()
                .filter(|s| s.churn)
                .map(|s| s.name.as_str())
                .collect();
            assert!(!churned.is_empty(), "no churn cases with prefix {prefix}");
            for name in churned {
                assert!(name.starts_with(prefix), "{name} misnamed");
            }
        }
    }

    #[test]
    fn single_thread_case_is_clean_and_deterministic() {
        let spec = TortureSpec {
            name: "unit-single".into(),
            lock: LockKind::Sprwl(SprwlConfig::default()),
            htm: HtmConfig::default(),
            threads: 1,
            ops_per_thread: 200,
            pairs: 4,
            write_pct: 50,
            reader_span: 4,
            writer_span: 1,
            writer_scan: 0,
            workload: Workload::Mirror,
            lincheck: true,
            churn: false,
        };
        let a = run_case(&spec, 7).expect("single-threaded run must be clean");
        let b = run_case(&spec, 7).expect("single-threaded run must be clean");
        assert_eq!(a, b, "same seed, same outcome");
        assert_eq!(a.reader_commits + a.writer_commits, 200);
    }
}
