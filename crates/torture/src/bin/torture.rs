//! Command-line driver for the torture matrix.
//!
//! ```text
//! cargo run -p sprwl-torture --release -- \
//!     [--threads N] [--ops N] [--seed S] [--filter SUBSTR] [--det] [--sched-seed S]
//! ```
//!
//! Runs every case in the default matrix (optionally filtered by name
//! substring), prints a per-case summary line, and exits non-zero if any
//! oracle violation is found. `TORTURE_SEED` overrides the base seed the
//! same way it does for the test suite.
//!
//! `--det` switches to the deterministic matrix (serialized scheduler,
//! bit-exact replay); `--sched-seed S` pins the schedule seed for every
//! deterministic case, equivalent to setting `TORTURE_SCHED_SEED`.
//!
//! # `torture explore`
//!
//! Systematic schedule-space search instead of seed sampling:
//!
//! ```text
//! torture explore --inject-bug [--budget N] [--max-delays N] [--horizon N]
//!                 [--no-dpor] [--frontier FILE] [--dump-dir DIR]
//!                 [--seed S] [--threads N] [--ops N] [--expect-violation]
//! torture explore --case SUBSTR ...        # explore a det-matrix case
//! torture explore --random N ...           # random-draw comparison run
//! torture explore --replay-schedule FILE   # bit-exact replay of a trace
//! ```
//!
//! `--inject-bug` runs the seeded ordering bug (SpRWL with its commit-time
//! reader check disabled — the CI smoke target). On a violation the
//! decision trace is written as a schedule file and announced on a
//! `schedule: <path>` line; feed it back with `--replay-schedule` to
//! reproduce the run bit-exactly. `--expect-violation` inverts the exit
//! code so the smoke test fails when the injected bug is *not* found.

use sprwl_torture::explore::{
    explore, explore_random, injected_bug_spec, replay_schedule, ExploreOptions,
};
use sprwl_torture::{base_seed, default_matrix, det_matrix, run_case, TortureSpec};
use sprwl_trace::schedule::ScheduleTrace;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value {v:?} for {flag}"))
        })
}

/// Resolves the spec an `explore` invocation operates on.
fn explore_spec(args: &[String], threads: usize, ops: usize) -> TortureSpec {
    if args.iter().any(|a| a == "--inject-bug") {
        return injected_bug_spec(threads, ops);
    }
    let Some(case) = parse_flag::<String>(args, "--case") else {
        eprintln!("torture explore: need --inject-bug, --case SUBSTR, or --replay-schedule FILE");
        std::process::exit(2);
    };
    det_matrix(threads, ops)
        .into_iter()
        .find(|s| s.name.contains(case.as_str()))
        .unwrap_or_else(|| {
            eprintln!("torture explore: no det-matrix case matches {case:?}");
            std::process::exit(2);
        })
}

fn explore_main(args: &[String]) -> ! {
    let threads: usize = parse_flag(args, "--threads").unwrap_or(2);
    let ops: usize = parse_flag(args, "--ops").unwrap_or(12);
    let seed: u64 = parse_flag(args, "--seed").unwrap_or_else(base_seed);

    if let Some(path) = parse_flag::<String>(args, "--replay-schedule") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("torture explore: cannot read {path}: {e}");
            std::process::exit(2);
        });
        let st = ScheduleTrace::from_text(&text).unwrap_or_else(|e| {
            eprintln!("torture explore: malformed schedule {path}: {e}");
            std::process::exit(2);
        });
        // Rebuild the spec the schedule was recorded from: the injected-bug
        // case is synthesized, everything else comes from the det matrix.
        let rec_ops = st
            .get("ops_per_thread")
            .and_then(|v| v.parse().ok())
            .unwrap_or(ops);
        let rec_threads = st.participants as usize;
        let spec = match st.get("case") {
            Some(name) if name == injected_bug_spec(rec_threads, rec_ops).name => {
                injected_bug_spec(rec_threads, rec_ops)
            }
            Some(name) => det_matrix(rec_threads, rec_ops)
                .into_iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| {
                    eprintln!("torture explore: schedule is from unknown case {name:?}");
                    std::process::exit(2);
                }),
            None => explore_spec(args, rec_threads, rec_ops),
        };
        match replay_schedule(&spec, seed, &st) {
            Ok(rep) => {
                print!("{}", rep.report);
                if rep.reproduced {
                    println!("replay: bit-exact reproduction of {path}");
                    std::process::exit(0);
                }
                eprintln!("replay: NOT reproduced");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("torture explore: {e}");
                std::process::exit(2);
            }
        }
    }

    if let Some(budget) = parse_flag::<usize>(args, "--random") {
        let spec = explore_spec(args, threads, ops);
        let rep = explore_random(&spec, seed, budget);
        println!(
            "explore-random: case {} seed {seed:#x}: {} schedule(s), {} distinct behaviour(s)",
            spec.name, rep.schedules_run, rep.distinct_behaviors
        );
        if let Some(s) = rep.violating_seed {
            println!("violating sched_seed: {s:#x}");
            std::process::exit(1);
        }
        std::process::exit(0);
    }

    let spec = explore_spec(args, threads, ops);
    let opts = ExploreOptions {
        budget: parse_flag(args, "--budget").unwrap_or(256),
        max_delays: parse_flag(args, "--max-delays").unwrap_or(2),
        horizon: parse_flag(args, "--horizon").unwrap_or(64),
        dpor: !args.iter().any(|a| a == "--no-dpor"),
        frontier: parse_flag::<String>(args, "--frontier").map(Into::into),
        dump_dir: parse_flag::<String>(args, "--dump-dir").map(Into::into),
    };
    let t = std::time::Instant::now();
    let report = explore(&spec, seed, &opts);
    println!(
        "explore: case {} seed {seed:#x}: {} schedule(s), {} distinct behaviour(s), {} pruned{}, {:.1}ms",
        report.case,
        report.schedules_run,
        report.distinct_behaviors,
        report.pruned,
        if report.resumed { ", resumed" } else { "" },
        t.elapsed().as_secs_f64() * 1e3,
    );
    let expect = args.iter().any(|a| a == "--expect-violation");
    match report.violation {
        Some(v) => {
            eprintln!("FAIL {}", v.violation);
            if let Some(p) = &v.schedule_path {
                println!("schedule: {}", p.display());
            }
            std::process::exit(if expect { 0 } else { 1 });
        }
        None => {
            if expect {
                eprintln!(
                    "explore: expected a violation but the frontier came up clean \
                     ({} schedules)",
                    report.schedules_run
                );
                std::process::exit(1);
            }
            std::process::exit(0);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("explore") {
        explore_main(&args[1..]);
    }
    let threads: usize = parse_flag(&args, "--threads").unwrap_or(4);
    let ops: usize = parse_flag(&args, "--ops").unwrap_or(250);
    let seed: u64 = parse_flag(&args, "--seed").unwrap_or_else(base_seed);
    let filter: Option<String> = parse_flag(&args, "--filter");
    let det = args.iter().any(|a| a == "--det");
    if let Some(s) = parse_flag::<String>(&args, "--sched-seed") {
        // The library resolves schedule seeds through the env var (which
        // accepts decimal or 0x-hex), so the flag just forwards the raw
        // value — test-suite replays and binary replays share one
        // mechanism, including the error message for malformed seeds.
        std::env::set_var("TORTURE_SCHED_SEED", s);
    }

    let matrix = if det {
        det_matrix(threads, ops)
    } else {
        default_matrix(threads, ops)
    };
    let mut failures = 0usize;
    let mut ran = 0usize;
    let t_all = std::time::Instant::now();
    for spec in &matrix {
        if let Some(f) = &filter {
            if !spec.name.contains(f.as_str()) {
                continue;
            }
        }
        ran += 1;
        let t_case = std::time::Instant::now();
        match run_case(spec, seed) {
            Ok(s) => println!(
                "ok   {:<28} {:>6} ops  r={:<6} w={:<6} spec={:<6} aborts={:<6} lin={:<7} {:>7.1}ms",
                spec.name,
                spec.total_ops(),
                s.reader_commits,
                s.writer_commits,
                s.speculative_commits,
                s.aborts,
                s.lincheck.label(),
                t_case.elapsed().as_secs_f64() * 1e3,
            ),
            Err(v) => {
                failures += 1;
                eprintln!("FAIL {} ({:.1}ms)", v, t_case.elapsed().as_secs_f64() * 1e3);
            }
        }
    }
    println!(
        "torture: {ran} case(s), {failures} violation(s), base seed {seed:#x}, {:.1}ms total",
        t_all.elapsed().as_secs_f64() * 1e3
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
