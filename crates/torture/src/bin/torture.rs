//! Command-line driver for the torture matrix.
//!
//! ```text
//! cargo run -p sprwl-torture --release -- \
//!     [--threads N] [--ops N] [--seed S] [--filter SUBSTR] [--det] [--sched-seed S]
//! ```
//!
//! Runs every case in the default matrix (optionally filtered by name
//! substring), prints a per-case summary line, and exits non-zero if any
//! oracle violation is found. `TORTURE_SEED` overrides the base seed the
//! same way it does for the test suite.
//!
//! `--det` switches to the deterministic matrix (serialized scheduler,
//! bit-exact replay); `--sched-seed S` pins the schedule seed for every
//! deterministic case, equivalent to setting `TORTURE_SCHED_SEED`.

use sprwl_torture::{base_seed, default_matrix, det_matrix, run_case};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value {v:?} for {flag}"))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: usize = parse_flag(&args, "--threads").unwrap_or(4);
    let ops: usize = parse_flag(&args, "--ops").unwrap_or(250);
    let seed: u64 = parse_flag(&args, "--seed").unwrap_or_else(base_seed);
    let filter: Option<String> = parse_flag(&args, "--filter");
    let det = args.iter().any(|a| a == "--det");
    if let Some(s) = parse_flag::<String>(&args, "--sched-seed") {
        // The library resolves schedule seeds through the env var (which
        // accepts decimal or 0x-hex), so the flag just forwards the raw
        // value — test-suite replays and binary replays share one
        // mechanism, including the error message for malformed seeds.
        std::env::set_var("TORTURE_SCHED_SEED", s);
    }

    let matrix = if det {
        det_matrix(threads, ops)
    } else {
        default_matrix(threads, ops)
    };
    let mut failures = 0usize;
    let mut ran = 0usize;
    let t_all = std::time::Instant::now();
    for spec in &matrix {
        if let Some(f) = &filter {
            if !spec.name.contains(f.as_str()) {
                continue;
            }
        }
        ran += 1;
        let t_case = std::time::Instant::now();
        match run_case(spec, seed) {
            Ok(s) => println!(
                "ok   {:<28} {:>6} ops  r={:<6} w={:<6} spec={:<6} aborts={:<6} lin={:<7} {:>7.1}ms",
                spec.name,
                spec.total_ops(),
                s.reader_commits,
                s.writer_commits,
                s.speculative_commits,
                s.aborts,
                s.lincheck.label(),
                t_case.elapsed().as_secs_f64() * 1e3,
            ),
            Err(v) => {
                failures += 1;
                eprintln!("FAIL {} ({:.1}ms)", v, t_case.elapsed().as_secs_f64() * 1e3);
            }
        }
    }
    println!(
        "torture: {ran} case(s), {failures} violation(s), base seed {seed:#x}, {:.1}ms total",
        t_all.elapsed().as_secs_f64() * 1e3
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
