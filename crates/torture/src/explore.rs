//! Systematic schedule-space exploration over the deterministic scheduler.
//!
//! One seeded PRNG stream samples interleavings blindly; this module
//! *searches* them. The explorer enumerates delay-bounded schedules
//! (CHESS-style: the canonical non-preemptive schedule plus at most `d`
//! forced preemptions, for growing `d`), runs every candidate through the
//! ordinary torture pipeline ([`crate::run_case_artifacts`]: oracle +
//! lincheck verdicts), deduplicates candidates by *behaviour fingerprint*
//! (what happened, with virtual-clock noise normalized away), prunes
//! candidates that provably commute with an explored schedule using the
//! HTM directory's conflict attribution (sleep-set DPOR-lite), and
//! persists its frontier so a search can resume where it stopped.
//!
//! On a violation it emits the scheduler's recorded **decision trace** as
//! a schedule file ([`sprwl_trace::schedule::ScheduleTrace`]): the exact
//! sequence of branch-point choices, replayable bit-exactly with
//! `torture explore --replay-schedule <file>` — a stronger artifact than a
//! schedule seed, because it reproduces a schedule found by *any* policy.

use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use htm_sim::{SchedulePolicyKind, SchedulerKind, SleepSetLite};
use sprwl_trace::schedule::{behavior_fingerprint, Fingerprint, ScheduleTrace};
use sprwl_trace::{EventKind, NO_PEER};

use crate::{
    fnv1a, mix64, write_postmortem, CaseArtifacts, LockKind, TortureSpec, Violation, Workload,
};

/// Bounds and knobs for one [`explore`] run.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Total schedules to execute before giving up (counting schedules
    /// already recorded in a resumed frontier).
    pub budget: usize,
    /// Maximum delays per schedule (the delay bound `d`).
    pub max_delays: usize,
    /// Delays are only inserted at branch points before this index —
    /// bounds the fan-out on long runs.
    pub horizon: usize,
    /// Sleep-set pruning of provably-commuting candidates (on by default;
    /// turn off to measure how much it saves).
    pub dpor: bool,
    /// Persist/resume the search frontier at this path.
    pub frontier: Option<PathBuf>,
    /// Where to write the violating schedule file (`TORTURE_DUMP_DIR`,
    /// else the OS temp dir, when unset).
    pub dump_dir: Option<PathBuf>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            budget: 64,
            max_delays: 2,
            horizon: 48,
            dpor: true,
            frontier: None,
            dump_dir: None,
        }
    }
}

/// A violation found by the explorer, with its replay artifact.
#[derive(Debug)]
pub struct ExploreViolation {
    /// The violation, postmortem plumbing included.
    pub violation: Violation,
    /// The delay vector of the violating schedule.
    pub delays: Vec<u64>,
    /// Where the decision-trace schedule file was written (`None` only if
    /// the write failed; the violation itself is never suppressed).
    pub schedule_path: Option<PathBuf>,
}

/// Outcome of one [`explore`] run.
#[derive(Debug)]
pub struct ExploreReport {
    /// The case explored.
    pub case: String,
    /// Schedules executed, lifetime of the frontier (resumed runs count).
    pub schedules_run: usize,
    /// Distinct behaviour fingerprints observed.
    pub distinct_behaviors: usize,
    /// Candidates pruned as provably equivalent (sleep-set).
    pub pruned: usize,
    /// Whether the frontier was resumed from disk.
    pub resumed: bool,
    /// The first violation found, if any.
    pub violation: Option<ExploreViolation>,
}

/// Outcome of an [`explore_random`] comparison run.
#[derive(Debug)]
pub struct RandomExploreReport {
    /// Schedules executed (one per drawn seed).
    pub schedules_run: usize,
    /// Distinct behaviour fingerprints observed.
    pub distinct_behaviors: usize,
    /// The first violating schedule seed, if any.
    pub violating_seed: Option<u64>,
}

/// Outcome of a [`replay_schedule`] run.
#[derive(Debug)]
pub struct ReplayReport {
    /// The replay reproduced the recorded run bit-exactly: no decision
    /// divergence, identical trace bytes, identical verdict.
    pub reproduced: bool,
    /// Human-readable comparison (always filled in).
    pub report: String,
    /// The violation the replay re-triggered, if any.
    pub violation: Option<String>,
}

/// The search frontier: BFS over delay vectors, plus everything needed to
/// resume — executed candidates, pending candidates, seen fingerprints.
#[derive(Debug, Default)]
struct Frontier {
    queue: VecDeque<Vec<u64>>,
    /// Candidates ever enqueued (executed or pending) — the dedup set.
    enqueued: HashSet<Vec<u64>>,
    /// Candidates already executed (skipped on resume).
    done: HashSet<Vec<u64>>,
    behaviors: HashSet<u64>,
    schedules_run: usize,
    pruned: usize,
}

fn delays_to_str(d: &[u64]) -> String {
    if d.is_empty() {
        "-".to_string()
    } else {
        d.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn delays_from_str(s: &str) -> Result<Vec<u64>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| t.parse().map_err(|e| format!("bad delay {t:?}: {e}")))
        .collect()
}

impl Frontier {
    fn to_text(&self, case: &str) -> String {
        let mut out = format!(
            "# sprwl-frontier v1 case={case}\n# run={} pruned={}\n",
            self.schedules_run, self.pruned
        );
        for b in &self.behaviors {
            let _ = writeln!(out, "b {b:016x}");
        }
        for d in &self.done {
            let _ = writeln!(out, "d {}", delays_to_str(d));
        }
        for q in &self.queue {
            let _ = writeln!(out, "q {}", delays_to_str(q));
        }
        out
    }

    fn from_text(text: &str, case: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let first = lines.next().ok_or("empty frontier file")?;
        let got_case = first
            .strip_prefix("# sprwl-frontier v1 case=")
            .ok_or_else(|| format!("bad frontier magic: {first:?}"))?;
        if got_case != case {
            return Err(format!(
                "frontier belongs to case {got_case:?}, not {case:?}"
            ));
        }
        let mut f = Frontier::default();
        for line in lines {
            if let Some(rest) = line.strip_prefix("# run=") {
                if let Some((run, pruned)) = rest.split_once(" pruned=") {
                    f.schedules_run = run.trim().parse().map_err(|e| format!("bad run: {e}"))?;
                    f.pruned = pruned
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad pruned: {e}"))?;
                }
            } else if let Some(rest) = line.strip_prefix("b ") {
                f.behaviors.insert(
                    u64::from_str_radix(rest.trim(), 16)
                        .map_err(|e| format!("bad fingerprint: {e}"))?,
                );
            } else if let Some(rest) = line.strip_prefix("d ") {
                let d = delays_from_str(rest.trim())?;
                f.enqueued.insert(d.clone());
                f.done.insert(d);
            } else if let Some(rest) = line.strip_prefix("q ") {
                let q = delays_from_str(rest.trim())?;
                f.enqueued.insert(q.clone());
                f.queue.push_back(q);
            }
        }
        Ok(f)
    }
}

/// The dedup key for one executed candidate: per-thread behaviour (event
/// kinds and semantic payloads, timestamps normalized away) plus the final
/// mirror-pair memory state.
fn artifacts_fingerprint(art: &CaseArtifacts) -> u64 {
    let mut fp = Fingerprint::new();
    fp.push(behavior_fingerprint(&art.traces));
    for &(a, b) in &art.pairs_final {
        fp.push(a);
        fp.push(b);
    }
    fp.finish()
}

/// Folds every conflict the HTM directory attributed in this run into the
/// sleep set: a `TxAbort` with a known peer means the aborting thread and
/// the peer touched the same line, in at least one order, for real.
fn note_conflicts(sleep: &mut SleepSetLite, art: &CaseArtifacts) {
    for t in &art.traces {
        for e in &t.events {
            if let EventKind::TxAbort { peer, .. } = e.kind {
                if peer != NO_PEER {
                    sleep.note_conflict(t.tid, peer);
                }
            }
        }
    }
}

/// Runs one delay-vector candidate through the standard torture pipeline.
fn run_candidate(spec: &TortureSpec, base_seed: u64, delays: &[u64]) -> CaseArtifacts {
    let mut spec = spec.clone();
    spec.htm.scheduler = SchedulerKind::DeterministicPolicy {
        policy: SchedulePolicyKind::DelayBounded {
            delays: delays.to_vec(),
        },
    };
    crate::run_case_artifacts(&spec, base_seed)
}

/// Serializes the violating run's decision trace next to the postmortems.
fn write_schedule_file(
    spec: &TortureSpec,
    base_seed: u64,
    art: &CaseArtifacts,
    delays: &[u64],
    detail: &str,
    dump_dir: Option<&Path>,
) -> Option<PathBuf> {
    let mut st = ScheduleTrace::new(spec.threads as u32);
    st.decisions = art.schedule.iter().map(|d| d.chosen).collect();
    st.set("case", &spec.name);
    st.set("base_seed", &format!("{base_seed:#x}"));
    st.set("case_seed", &format!("{:#x}", art.case_seed));
    st.set("ops_per_thread", &spec.ops_per_thread.to_string());
    st.set("delays", &delays_to_str(delays));
    st.set("detail", detail);
    st.set("trace_fnv", &format!("{:016x}", fnv1a(&art.trace_jsonl())));
    st.set(
        "behavior_fp",
        &format!("{:016x}", artifacts_fingerprint(art)),
    );
    let dir = dump_dir
        .map(Path::to_path_buf)
        .or_else(|| std::env::var_os("TORTURE_DUMP_DIR").map(PathBuf::from))
        .unwrap_or_else(std::env::temp_dir);
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!(
        "torture-explore-{}-{:016x}.schedule.txt",
        spec.name, art.case_seed
    ));
    std::fs::write(&path, st.to_text()).ok().map(|()| path)
}

/// Enumerates delay-bounded schedules for `spec` until a violation, the
/// budget, or frontier exhaustion.
///
/// Candidates are explored breadth-first over delay vectors (so all of
/// `d = 0`, then `d = 1`, …): each executed schedule spawns children that
/// add one delay at a branch point at or after its last delay (keeping
/// vectors sorted kills permutation duplicates). With `dpor` on, a child
/// whose new delay reorders threads that never conflicted in any observed
/// run is pruned as provably equivalent.
///
/// # Panics
///
/// Panics on harness misconfiguration (invalid spec), never on lock bugs.
pub fn explore(spec: &TortureSpec, base_seed: u64, opts: &ExploreOptions) -> ExploreReport {
    let mut sleep = SleepSetLite::new();
    let mut frontier = Frontier::default();
    let mut resumed = false;
    if let Some(path) = &opts.frontier {
        if let Ok(text) = std::fs::read_to_string(path) {
            frontier = Frontier::from_text(&text, &spec.name)
                .unwrap_or_else(|e| panic!("cannot resume frontier {}: {e}", path.display()));
            resumed = true;
        }
    }
    if frontier.enqueued.is_empty() {
        frontier.queue.push_back(Vec::new());
        frontier.enqueued.insert(Vec::new());
    }

    let mut violation = None;
    while violation.is_none() && frontier.schedules_run < opts.budget {
        let Some(delays) = frontier.queue.pop_front() else {
            break;
        };
        if frontier.done.contains(&delays) {
            continue;
        }
        let art = run_candidate(spec, base_seed, &delays);
        frontier.schedules_run += 1;
        frontier.done.insert(delays.clone());
        frontier.behaviors.insert(artifacts_fingerprint(&art));
        note_conflicts(&mut sleep, &art);

        if let Err(detail) = &art.outcome {
            let mut v = Violation {
                case: spec.name.clone(),
                seed: art.case_seed,
                base_seed,
                sched_seed: None,
                detail: format!(
                    "{detail}\n  found by explore at delays [{}]",
                    delays_to_str(&delays)
                ),
                trace: crate::worker_trace(spec).label(),
                postmortem: None,
            };
            v.postmortem = write_postmortem(&v, &art.traces);
            let schedule_path = write_schedule_file(
                spec,
                base_seed,
                &art,
                &delays,
                detail,
                opts.dump_dir.as_deref(),
            );
            violation = Some(ExploreViolation {
                violation: v,
                delays,
                schedule_path,
            });
            break;
        }

        // Spawn children: one more delay, strictly after the last one (a
        // repeated delay at the same branch just rotates further through
        // the same runnable set — with two runnable threads that lands
        // back on the baseline choice, a pure duplicate), within the
        // horizon and this run's actual branch count.
        if delays.len() < opts.max_delays {
            let first = delays.last().map(|d| d + 1).unwrap_or(0);
            let limit = (art.schedule.len() as u64).min(opts.horizon as u64);
            for p in first..limit {
                let mut child = delays.clone();
                child.push(p);
                if frontier.enqueued.contains(&child) {
                    continue;
                }
                // Sleep-set pruning, deliberately scoped: the conflict
                // relation is built from abort *attribution*, which is
                // incomplete — uninstrumented readers leave no abort
                // trace, and the serial baseline has no overlaps at all.
                // So first delays are never pruned (they are how
                // conflicts get discovered), and deeper delays are pruned
                // only once positive conflict evidence exists and the
                // reordered threads are not part of it. `--no-dpor`
                // disables even that (see DESIGN.md §6e on soundness).
                if opts.dpor && !delays.is_empty() && sleep.pairs() > 0 {
                    if let Some(rec) = art.schedule.get(p as usize) {
                        if !sleep.delay_can_matter(rec) {
                            frontier.pruned += 1;
                            continue;
                        }
                    }
                }
                frontier.enqueued.insert(child.clone());
                frontier.queue.push_back(child);
            }
        }
    }

    if let Some(path) = &opts.frontier {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, frontier.to_text(&spec.name)) {
            eprintln!("explore: cannot persist frontier {}: {e}", path.display());
        }
    }

    ExploreReport {
        case: spec.name.clone(),
        schedules_run: frontier.schedules_run,
        distinct_behaviors: frontier.behaviors.len(),
        pruned: frontier.pruned,
        resumed,
        violation,
    }
}

/// The comparison baseline: `budget` schedules drawn from random schedule
/// seeds (the pre-explorer behaviour), same dedup key. This is what the
/// acceptance criterion measures delay bounding against.
pub fn explore_random(spec: &TortureSpec, base_seed: u64, budget: usize) -> RandomExploreReport {
    let mut behaviors = HashSet::new();
    let mut violating_seed = None;
    let mut schedules_run = 0;
    for i in 0..budget {
        let seed = mix64(base_seed ^ fnv1a(&spec.name) ^ (0xD1CE + i as u64));
        let mut spec2 = spec.clone();
        spec2.htm.scheduler = SchedulerKind::Deterministic {
            schedule_seed: seed,
        };
        let art = crate::run_case_artifacts(&spec2, base_seed);
        schedules_run += 1;
        behaviors.insert(artifacts_fingerprint(&art));
        if art.outcome.is_err() && violating_seed.is_none() {
            violating_seed = Some(seed);
            break;
        }
    }
    RandomExploreReport {
        schedules_run,
        distinct_behaviors: behaviors.len(),
        violating_seed,
    }
}

/// Re-executes a recorded schedule file and verifies bit-exact
/// reproduction: the decision trace must be consumed without divergence,
/// the replayed run's trace bytes must hash identically, and the verdict
/// must match the recorded one.
///
/// The spec must describe the same case the schedule was recorded from
/// (same name, thread count, and ops; the file carries them as metadata).
///
/// # Errors
///
/// Returns a description when the schedule file does not match the spec.
pub fn replay_schedule(
    spec: &TortureSpec,
    base_seed: u64,
    st: &ScheduleTrace,
) -> Result<ReplayReport, String> {
    if let Some(case) = st.get("case") {
        if case != spec.name {
            return Err(format!(
                "schedule was recorded from case {case:?}, not {:?}",
                spec.name
            ));
        }
    }
    if st.participants != spec.threads as u32 {
        return Err(format!(
            "schedule has {} participants, spec has {} threads",
            st.participants, spec.threads
        ));
    }
    if let Some(ops) = st.get("ops_per_thread") {
        if ops != spec.ops_per_thread.to_string() {
            return Err(format!(
                "schedule was recorded at ops_per_thread={ops}, spec has {}",
                spec.ops_per_thread
            ));
        }
    }
    let recorded_base: u64 = match st.get("base_seed") {
        Some(s) => {
            let s = s.trim();
            let parsed = s
                .strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| s.parse());
            parsed.map_err(|e| format!("bad base_seed in schedule: {e}"))?
        }
        None => base_seed,
    };

    let mut spec2 = spec.clone();
    spec2.htm.scheduler = SchedulerKind::DeterministicPolicy {
        policy: SchedulePolicyKind::Replay {
            decisions: st.decisions.clone().into(),
        },
    };
    let art = crate::run_case_artifacts(&spec2, recorded_base);

    let mut report = String::new();
    let mut reproduced = true;
    match &art.sched_divergence {
        None => {
            let _ = writeln!(
                report,
                "schedule: {} recorded decisions consumed faithfully",
                st.decisions.len()
            );
        }
        Some(d) => {
            reproduced = false;
            let _ = writeln!(report, "schedule DIVERGED: {d}");
        }
    }
    if let Some(want) = st.get("trace_fnv") {
        let got = format!("{:016x}", fnv1a(&art.trace_jsonl()));
        if want == got {
            let _ = writeln!(report, "trace: bit-exact (fnv {got})");
        } else {
            reproduced = false;
            let _ = writeln!(report, "trace: DIFFERS (recorded {want}, replayed {got})");
        }
    }
    let violation = art.outcome.as_ref().err().cloned();
    match (st.get("detail"), &violation) {
        (Some(want), Some(got)) if want == got => {
            let _ = writeln!(
                report,
                "verdict: re-triggered the recorded violation: {got}"
            );
        }
        (Some(want), Some(got)) => {
            reproduced = false;
            let _ = writeln!(
                report,
                "verdict: violated DIFFERENTLY\n  recorded: {want}\n  replayed: {got}"
            );
        }
        (Some(want), None) => {
            reproduced = false;
            let _ = writeln!(
                report,
                "verdict: replay PASSED the oracle (recorded violation: {want})"
            );
        }
        (None, Some(got)) => {
            let _ = writeln!(report, "verdict: violation: {got}");
        }
        (None, None) => {
            let _ = writeln!(report, "verdict: clean run");
        }
    }
    Ok(ReplayReport {
        reproduced,
        report,
        violation,
    })
}

/// The seeded ordering-bug workload the CI smoke hunts: SpRWL with its
/// commit-time reader check disabled (a test-only fault injection —
/// see `SprwlConfig::debug_skip_commit_reader_check`), uninstrumented
/// readers, and a tiny hot bank. Under the non-preemptive baseline the
/// bug is invisible; one well-placed preemption between a reader's two
/// mirror reads makes a committing writer tear the pair.
pub fn injected_bug_spec(threads: usize, ops_per_thread: usize) -> TortureSpec {
    let mut cfg = sprwl::SprwlConfig::no_sched();
    cfg.debug_skip_commit_reader_check = true;
    TortureSpec {
        name: "explore-injected-reader-bug".into(),
        lock: LockKind::Sprwl(cfg),
        htm: htm_sim::HtmConfig {
            scheduler: SchedulerKind::Deterministic { schedule_seed: 0 },
            sched_shake_prob: 0.0,
            ..htm_sim::HtmConfig::default()
        },
        threads,
        ops_per_thread,
        pairs: 2,
        write_pct: 50,
        reader_span: 2,
        writer_span: 1,
        writer_scan: 0,
        workload: Workload::Mirror,
        lincheck: false,
        churn: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_round_trips_through_text() {
        let mut f = Frontier::default();
        f.queue.push_back(vec![1, 4]);
        f.queue.push_back(Vec::new());
        f.enqueued.insert(vec![1, 4]);
        f.enqueued.insert(Vec::new());
        f.enqueued.insert(vec![7]);
        f.done.insert(vec![7]);
        f.behaviors.insert(0xDEAD_BEEF);
        f.schedules_run = 3;
        f.pruned = 2;
        let text = f.to_text("case-x");
        let back = Frontier::from_text(&text, "case-x").unwrap();
        assert_eq!(back.schedules_run, 3);
        assert_eq!(back.pruned, 2);
        assert_eq!(back.behaviors, f.behaviors);
        assert_eq!(back.done, f.done);
        assert_eq!(back.enqueued, f.enqueued);
        assert_eq!(back.queue.len(), 2);
        assert!(Frontier::from_text(&text, "other-case").is_err());
    }

    #[test]
    fn delays_round_trip() {
        assert_eq!(delays_from_str("-").unwrap(), Vec::<u64>::new());
        assert_eq!(delays_from_str("0,3,3").unwrap(), vec![0, 3, 3]);
        assert_eq!(delays_to_str(&[0, 3, 3]), "0,3,3");
        assert_eq!(delays_to_str(&[]), "-");
    }
}
