//! # snzi — Scalable NonZero Indicator
//!
//! An implementation of the SNZI object of Ellen, Lev, Luchangco and Moir
//! (PODC ’07), used by SpRWL’s optional reader-tracking optimization
//! (§3.4 of the paper): readers `arrive`/`depart`, and writers ask a single
//! question — *is the count non-zero?* — by reading **one** memory word.
//!
//! The trade-off reproduced here is exactly the paper’s: queries are O(1)
//! (one cache line in the writer’s transactional read-set instead of one
//! line per thread), while arrivals and departures cost O(log n) in the
//! worst case because 0↔non-zero transitions propagate towards the root.
//! In steady state with many concurrent readers, most arrivals stop at
//! their leaf.
//!
//! ## Structure
//!
//! A binary tree with one leaf per thread. Interior nodes hold a
//! `(version, count)` word updated by CAS, with the paper’s ½-trick: an
//! arriving thread first parks the node at ½, arrives at the parent, then
//! promotes ½ → 1; a thread that finds a parked node helps promote it
//! (arriving at the parent on the parker's behalf) before adding its own
//! unit; whoever loses the promotion race undoes its surplus parent
//! arrival. This keeps the invariant that a node’s count is non-zero
//! whenever any descendant’s is, without locking.
//!
//! The **root** count lives in a [`htm_sim::SimMemory`] cell so that
//! hardware transactions can subscribe to it: a writer that queried the
//! indicator inside a transaction is doomed the moment the indicator
//! changes — the very conflict SpRWL’s correctness needs.
//!
//! ## Root tag bits
//!
//! Only the low [`ROOT_COUNT_MASK`] bits of the root word hold the count;
//! the bits at and above [`ROOT_TAG_SHIFT`] are reserved for a **client
//! tag** (BRAVO parks its three-state bias word there, so a writer's
//! "bias off *and* no backstop readers?" check is a single subscribed
//! line and a single compare against zero). The indicator's own updates
//! preserve the tag for free: the root only ever moves by balanced
//! `±1` steps, so the count can neither borrow from nor carry into the
//! tag bits. Clients mutate the tag with full-word CAS ([`with_root_tag`])
//! and must leave the count bits untouched.
//!
//! ```
//! use htm_sim::{Htm, HtmConfig};
//! use snzi::Snzi;
//!
//! let htm = Htm::new(HtmConfig::default(), 256);
//! let snzi = Snzi::new(htm.memory(), 4);
//! let d = htm.direct(0);
//! assert!(!snzi.query_untracked(&d));
//! snzi.arrive(&d, 0);
//! assert!(snzi.query_untracked(&d));
//! snzi.depart(&d, 0);
//! assert!(!snzi.query_untracked(&d));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::sync::atomic::{AtomicU64, Ordering};

use htm_sim::{CellId, Direct, MemAccess, SimMemory, TxResult};

/// Interior-node encoding: count in half-units (½ ⇒ 1, 1 ⇒ 2, …) in the
/// low 32 bits, ABA-protection version in the high 32 bits.
const HALF: u64 = 1;
const ONE: u64 = 2;
const COUNT_MASK: u64 = 0xFFFF_FFFF;

#[inline]
fn count_of(word: u64) -> u64 {
    word & COUNT_MASK
}

#[inline]
fn version_of(word: u64) -> u64 {
    word >> 32
}

#[inline]
fn node_pack(version: u64, count: u64) -> u64 {
    (version << 32) | (count & COUNT_MASK)
}

/// First bit of the root word's client-tag field (see the crate docs).
pub const ROOT_TAG_SHIFT: u32 = 32;

/// Mask of the root word's count bits; everything above is client tag.
pub const ROOT_COUNT_MASK: u64 = 0xFFFF_FFFF;

/// The reader count encoded in a root word.
#[inline]
pub fn root_count(word: u64) -> u64 {
    word & ROOT_COUNT_MASK
}

/// The client tag encoded in a root word.
#[inline]
pub fn root_tag(word: u64) -> u64 {
    word >> ROOT_TAG_SHIFT
}

/// `word` with its client tag replaced by `tag` (count bits preserved).
#[inline]
pub fn with_root_tag(word: u64, tag: u64) -> u64 {
    (tag << ROOT_TAG_SHIFT) | (word & ROOT_COUNT_MASK)
}

/// A scalable non-zero indicator for up to `n_threads` participants.
///
/// `arrive`/`depart` must be balanced per logical presence (a thread may
/// arrive multiple times; the indicator stays set until every arrival has
/// departed). Queries may run untracked or inside hardware transactions.
#[derive(Debug)]
pub struct Snzi {
    /// Interior nodes in heap layout. Nodes 0 and 1 are the children of the
    /// (external) root cell; the parent of node `i ≥ 2` is `(i - 2) / 2`.
    nodes: Box<[AtomicU64]>,
    /// Index of the first leaf within `nodes`.
    first_leaf: usize,
    n_threads: usize,
    /// Root count, in simulated memory so transactions can subscribe to it.
    root: CellId,
}

impl Snzi {
    /// Creates an indicator with one leaf per thread; the root counter is
    /// allocated (on its own cache line) from `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero or the simulated memory is exhausted.
    pub fn new(mem: &SimMemory, n_threads: usize) -> Self {
        assert!(n_threads > 0, "snzi needs at least one thread");
        let n_leaves = n_threads.next_power_of_two().max(2);
        // A complete binary tree with `n_leaves` leaves, minus the external
        // root: 2 * n_leaves - 2 nodes, leaves occupying the tail.
        let total = 2 * n_leaves - 2;
        let mut nodes = Vec::with_capacity(total);
        nodes.resize_with(total, || AtomicU64::new(0));
        Self {
            nodes: nodes.into_boxed_slice(),
            first_leaf: n_leaves - 2,
            n_threads,
            root: mem.alloc_line_aligned(1).cell(0),
        }
    }

    /// The number of threads this indicator was sized for.
    pub fn threads(&self) -> usize {
        self.n_threads
    }

    /// The simulated-memory cell holding the root count. Exposed so tests
    /// and footprint accounting can reason about the single-line query.
    pub fn root_cell(&self) -> CellId {
        self.root
    }

    #[inline]
    fn leaf_of(&self, tid: usize) -> usize {
        self.first_leaf + (tid % (self.nodes.len() - self.first_leaf))
    }

    #[inline]
    fn parent(i: usize) -> Option<usize> {
        if i < 2 {
            None // children of the root cell
        } else {
            Some((i - 2) / 2)
        }
    }

    /// Registers one presence for `tid`. O(1) when the thread's subtree is
    /// already active; O(log n) when activating empty subtrees.
    pub fn arrive(&self, d: &Direct<'_>, tid: usize) {
        self.arrive_node(d, self.leaf_of(tid));
    }

    /// Removes one presence for `tid`. Must balance a previous
    /// [`Snzi::arrive`] by the same logical presence.
    pub fn depart(&self, d: &Direct<'_>, tid: usize) {
        self.depart_node(d, self.leaf_of(tid));
    }

    /// One-word query, untracked (for readers and diagnostics). Ignores
    /// the root's client-tag bits.
    pub fn query_untracked(&self, d: &Direct<'_>) -> bool {
        root_count(d.load(self.root)) > 0
    }

    /// Diagnostic for quiescent-state oracles: verifies every counter in
    /// the indicator — the root cell and all interior/leaf nodes — is zero,
    /// i.e. every [`Snzi::arrive`] has been balanced by a
    /// [`Snzi::depart`]. Only meaningful while no thread is mid-operation.
    ///
    /// # Errors
    ///
    /// Names the first unbalanced counter found.
    pub fn check_balanced(&self, mem: &SimMemory) -> Result<(), String> {
        let root = root_count(mem.peek(self.root));
        if root != 0 {
            return Err(format!("snzi root count is {root}, expected 0"));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let c = count_of(node.load(Ordering::SeqCst));
            if c != 0 {
                return Err(format!("snzi node {i} count is {c}, expected 0"));
            }
        }
        Ok(())
    }

    /// One-word query through any accessor — inside a hardware transaction
    /// this subscribes the root line, so a subsequent reader arrival dooms
    /// the querying transaction (strong isolation), which is exactly the
    /// behaviour SpRWL's SNZI variant relies on.
    ///
    /// # Errors
    ///
    /// Propagates the accessor's abort, if transactional.
    pub fn query<A: MemAccess + ?Sized>(&self, a: &mut A) -> TxResult<bool> {
        Ok(root_count(a.read(self.root)?) > 0)
    }

    /// The raw root word — count *and* client tag — through any accessor,
    /// subscribing the root line when transactional. Lets a client whose
    /// tag encodes extra admission state (BRAVO's bias word) fold its
    /// whole commit-time check into one read: `word == 0` ⇔ the count is
    /// zero and the tag is clear.
    ///
    /// # Errors
    ///
    /// Propagates the accessor's abort, if transactional.
    pub fn query_word<A: MemAccess + ?Sized>(&self, a: &mut A) -> TxResult<u64> {
        a.read(self.root)
    }

    /// Ellen et al., Figure 2 (hierarchical node `Arrive`).
    fn arrive_node(&self, d: &Direct<'_>, i: usize) {
        let node = &self.nodes[i];
        let mut succ = false;
        let mut undo = 0u32;
        while !succ {
            let mut x = node.load(Ordering::SeqCst);
            if count_of(x) >= ONE {
                if node
                    .compare_exchange(
                        x,
                        node_pack(version_of(x), count_of(x) + ONE),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
                {
                    succ = true;
                }
                continue;
            }
            if count_of(x) == 0 {
                let parked = node_pack(version_of(x) + 1, HALF);
                if node
                    .compare_exchange(x, parked, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    // Our arrival is parked; it will be completed below (or
                    // by a helper, in which case our promotion CAS fails
                    // and we undo the surplus parent arrival).
                    succ = true;
                    x = parked;
                } else {
                    continue;
                }
            }
            if count_of(x) == HALF {
                self.arrive_parent(d, i);
                if node
                    .compare_exchange(
                        x,
                        node_pack(version_of(x), ONE),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_err()
                {
                    undo += 1;
                }
            }
        }
        while undo > 0 {
            self.depart_parent(d, i);
            undo -= 1;
        }
    }

    /// Ellen et al., Figure 2 (hierarchical node `Depart`).
    fn depart_node(&self, d: &Direct<'_>, i: usize) {
        let node = &self.nodes[i];
        loop {
            let x = node.load(Ordering::SeqCst);
            debug_assert!(count_of(x) >= ONE, "depart without matching arrive");
            if node
                .compare_exchange(
                    x,
                    node_pack(version_of(x), count_of(x) - ONE),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                if count_of(x) == ONE {
                    self.depart_parent(d, i);
                }
                return;
            }
        }
    }

    fn arrive_parent(&self, d: &Direct<'_>, i: usize) {
        match Self::parent(i) {
            Some(p) => self.arrive_node(d, p),
            None => {
                // Root: a plain fetch-add on the simulated-memory cell.
                // This is the only point where reader traffic can doom
                // transactions subscribed to the indicator.
                d.fetch_add(self.root, 1);
            }
        }
    }

    fn depart_parent(&self, d: &Direct<'_>, i: usize) {
        match Self::parent(i) {
            Some(p) => self.depart_node(d, p),
            None => {
                let prev = d.fetch_add(self.root, u64::MAX); // wrapping -1
                debug_assert!(prev > 0, "root depart without arrive");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{Htm, HtmConfig};

    fn setup(n: usize) -> (Htm, Snzi) {
        let htm = Htm::new(
            HtmConfig {
                max_threads: n.max(2),
                ..HtmConfig::default()
            },
            256,
        );
        let snzi = Snzi::new(htm.memory(), n);
        (htm, snzi)
    }

    #[test]
    fn empty_indicator_is_zero() {
        let (htm, snzi) = setup(4);
        assert!(!snzi.query_untracked(&htm.direct(0)));
    }

    #[test]
    fn single_arrive_depart_toggles() {
        let (htm, snzi) = setup(4);
        let d = htm.direct(0);
        snzi.arrive(&d, 0);
        assert!(snzi.query_untracked(&d));
        snzi.depart(&d, 0);
        assert!(!snzi.query_untracked(&d));
    }

    #[test]
    fn multiple_arrivals_require_matching_departures() {
        let (htm, snzi) = setup(8);
        let d = htm.direct(0);
        for tid in 0..8 {
            snzi.arrive(&d, tid);
        }
        for tid in 0..7 {
            snzi.depart(&d, tid);
            assert!(snzi.query_untracked(&d), "still {} present", 7 - tid);
        }
        snzi.depart(&d, 7);
        assert!(!snzi.query_untracked(&d));
    }

    #[test]
    fn reentrant_arrivals_by_one_thread() {
        let (htm, snzi) = setup(2);
        let d = htm.direct(0);
        snzi.arrive(&d, 0);
        snzi.arrive(&d, 0);
        snzi.depart(&d, 0);
        assert!(snzi.query_untracked(&d));
        snzi.depart(&d, 0);
        assert!(!snzi.query_untracked(&d));
    }

    #[test]
    fn threads_map_to_disjoint_leaves_for_small_n() {
        let (_htm, snzi) = setup(4);
        assert_eq!(snzi.threads(), 4);
        let leaves: std::collections::HashSet<_> = (0..4).map(|t| snzi.leaf_of(t)).collect();
        assert_eq!(leaves.len(), 4);
    }

    #[test]
    fn query_footprint_is_a_single_line() {
        let (htm, snzi) = setup(16);
        let d = htm.direct(0);
        for t in 0..16 {
            snzi.arrive(&d, t);
        }
        let mut ctx = htm.thread(0);
        ctx.txn(htm_sim::TxKind::Htm, |tx| {
            let set = snzi.query(tx)?;
            assert!(set);
            assert_eq!(tx.read_footprint(), 1);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn arrival_dooms_transaction_subscribed_to_indicator() {
        let (htm, snzi) = setup(4);
        let mut ctx = htm.thread(0);
        let err = ctx
            .txn(htm_sim::TxKind::Htm, |tx| {
                let set = snzi.query(tx)?;
                assert!(!set);
                // Reader arrives concurrently (untracked).
                snzi.arrive(&htm.direct(1), 1);
                // Transaction must now be doomed.
                tx.read(snzi.root_cell())?;
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err, htm_sim::Abort::Conflict);
    }

    #[test]
    fn root_tag_survives_arrive_depart_traffic_and_is_masked_from_queries() {
        let (htm, snzi) = setup(8);
        let d = htm.direct(0);
        // Plant a client tag, then run balanced traffic through the root.
        let w = d.load(snzi.root_cell());
        d.store(snzi.root_cell(), with_root_tag(w, 0b10));
        for tid in 0..8 {
            snzi.arrive(&d, tid);
        }
        assert!(snzi.query_untracked(&d), "count visible despite tag");
        for tid in 0..8 {
            snzi.depart(&d, tid);
        }
        assert!(!snzi.query_untracked(&d), "tag must not read as presence");
        let w = d.load(snzi.root_cell());
        assert_eq!(root_tag(w), 0b10, "±1 traffic must preserve the tag");
        assert_eq!(root_count(w), 0);
        // The tagged-but-empty indicator still passes the balance check.
        snzi.check_balanced(htm.memory()).unwrap();
        // And the raw word is exactly tag | count.
        let mut ctx = htm.thread(0);
        ctx.txn(htm_sim::TxKind::Htm, |tx| {
            assert_eq!(snzi.query_word(tx)?, 0b10 << ROOT_TAG_SHIFT);
            assert_eq!(tx.read_footprint(), 1);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn steady_state_arrivals_do_not_touch_root() {
        let (htm, snzi) = setup(2);
        let d = htm.direct(0);
        snzi.arrive(&d, 0); // activates the path to the root
        let root_before = d.load(snzi.root_cell());
        // Re-arrivals on an active leaf must stay leaf-local.
        for _ in 0..100 {
            snzi.arrive(&d, 0);
        }
        assert_eq!(d.load(snzi.root_cell()), root_before);
        for _ in 0..101 {
            snzi.depart(&d, 0);
        }
        assert!(!snzi.query_untracked(&d));
    }
}
