//! Concurrency and property tests for the SNZI.

use htm_sim::{Htm, HtmConfig};
use proptest::prelude::*;
use snzi::Snzi;

#[test]
fn concurrent_arrive_depart_round_trips() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 300;
    let htm = Htm::new(
        HtmConfig {
            max_threads: THREADS,
            ..HtmConfig::default()
        },
        256,
    );
    let snzi = Snzi::new(htm.memory(), THREADS);
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let htm = &htm;
            let snzi = &snzi;
            s.spawn(move || {
                let d = htm.direct(tid);
                for _ in 0..ROUNDS {
                    snzi.arrive(&d, tid);
                    // While present, the indicator must be set.
                    assert!(snzi.query_untracked(&d));
                    snzi.depart(&d, tid);
                }
            });
        }
    });
    assert!(!snzi.query_untracked(&htm.direct(0)), "all departed");
}

#[test]
fn concurrent_nested_presences_drain_to_zero() {
    const THREADS: usize = 6;
    let htm = Htm::new(
        HtmConfig {
            max_threads: THREADS,
            ..HtmConfig::default()
        },
        256,
    );
    let snzi = Snzi::new(htm.memory(), THREADS);
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let htm = &htm;
            let snzi = &snzi;
            s.spawn(move || {
                let d = htm.direct(tid);
                for depth in 1..=4usize {
                    for _ in 0..depth {
                        snzi.arrive(&d, tid);
                    }
                    assert!(snzi.query_untracked(&d));
                    for _ in 0..depth {
                        snzi.depart(&d, tid);
                    }
                }
            });
        }
    });
    assert!(!snzi.query_untracked(&htm.direct(0)));
}

#[test]
fn indicator_never_false_while_any_thread_is_inside() {
    // One thread holds a long presence while others churn; the indicator
    // must never flicker to zero.
    const CHURNERS: usize = 4;
    let htm = Htm::new(
        HtmConfig {
            max_threads: CHURNERS + 1,
            ..HtmConfig::default()
        },
        256,
    );
    let snzi = Snzi::new(htm.memory(), CHURNERS + 1);
    let holder = htm.direct(CHURNERS);
    snzi.arrive(&holder, CHURNERS);
    std::thread::scope(|s| {
        for tid in 0..CHURNERS {
            let htm = &htm;
            let snzi = &snzi;
            s.spawn(move || {
                let d = htm.direct(tid);
                for _ in 0..500 {
                    snzi.arrive(&d, tid);
                    snzi.depart(&d, tid);
                }
            });
        }
        let snzi = &snzi;
        let htm = &htm;
        s.spawn(move || {
            let d = htm.direct(CHURNERS);
            for _ in 0..2_000 {
                assert!(snzi.query_untracked(&d), "indicator flickered to 0");
            }
        });
    });
    snzi.depart(&holder, CHURNERS);
    assert!(!snzi.query_untracked(&holder));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sequential linearizable reference: the indicator equals
    /// (number of arrives − departs) > 0 at every step.
    #[test]
    fn matches_reference_counter(ops in proptest::collection::vec((0usize..8, any::<bool>()), 1..200)) {
        let htm = Htm::new(HtmConfig { max_threads: 8, ..HtmConfig::default() }, 256);
        let snzi = Snzi::new(htm.memory(), 8);
        let d = htm.direct(0);
        let mut per_thread = [0i64; 8];
        for (tid, is_arrive) in ops {
            if is_arrive {
                snzi.arrive(&d, tid);
                per_thread[tid] += 1;
            } else if per_thread[tid] > 0 {
                snzi.depart(&d, tid);
                per_thread[tid] -= 1;
            }
            let total: i64 = per_thread.iter().sum();
            prop_assert_eq!(snzi.query_untracked(&d), total > 0);
        }
    }
}
