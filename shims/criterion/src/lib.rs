//! Offline shim for the subset of `criterion` this workspace uses:
//! `Criterion::bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Runs each benchmark for a
//! short measured window and prints mean ns/iter — no statistics engine,
//! but enough to smoke-run the benches offline.

use std::time::{Duration, Instant};

/// Discourages the optimizer from deleting a value (std-based).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of measured samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `f` as a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            measure: self.measurement_time,
            samples: self.sample_size,
            total_ns: 0,
            total_iters: 0,
        };
        f(&mut b);
        if b.total_iters > 0 {
            println!(
                "{name}: {:.1} ns/iter ({} iters)",
                b.total_ns as f64 / b.total_iters as f64,
                b.total_iters
            );
        } else {
            println!("{name}: no iterations recorded");
        }
        self
    }

    /// Back-compat no-op (criterion's plotting config etc. are ignored).
    pub fn final_summary(&mut self) {}

    /// Opens a named benchmark group; benchmarks inside it are reported as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_owned(),
        }
    }
}

/// A named group of related benchmarks (criterion API shape).
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` as a benchmark named `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.c.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op; matches criterion's API).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    total_ns: u128,
    total_iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run until the window elapses.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(routine());
        }
        // Calibrate a batch size of roughly 1/10th of a sample window.
        let sample_window = self.measure / self.samples.max(1) as u32;
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (sample_window.as_nanos() / 10 / once.as_nanos()).clamp(1, 1 << 20) as u64;
        // Measure.
        let start = Instant::now();
        while start.elapsed() < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total_ns += t.elapsed().as_nanos();
            self.total_iters += batch;
        }
    }
}

/// Declares a benchmark group (criterion API shape).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("shim/self-test", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }
}
