//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! `Rng::{gen_range, gen_bool}`, `SeedableRng::seed_from_u64` and
//! `rngs::StdRng`. Backed by splitmix64-seeded xoshiro256**, deterministic
//! per seed — which is all the workloads and benches need.

/// Types that `gen_range` can produce.
pub trait SampleUniform: Copy {
    /// Uniform-ish sample in `[lo, hi]` (inclusive) from raw 64 random bits.
    fn from_u64(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_u64(bits: u64, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (bits as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn from_u64(bits: u64, lo: Self, hi: Self) -> Self {
        let unit = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Inclusive `(lo, hi)` bounds.
    fn bounds(self) -> (T, T);
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn bounds(self) -> (f64, f64) {
        assert!(self.start < self.end, "empty range");
        (self.start, self.end)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty range in gen_range");
                (self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start() <= self.end(), "empty range in gen_range");
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        T::from_u64(self.next_u64(), lo, hi)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be within [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.gen_range(5..=15);
            assert!((5..=15).contains(&w));
            let f: f64 = r.gen_range(0.0..0.05);
            assert!((0.0..0.05).contains(&f));
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }
}
