//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace routes
//! `proptest` here. The API surface matches what the test files use —
//! `proptest!`, `prop_oneof!`, `prop_assert*!`, `Strategy`/`prop_map`,
//! `any`, `Just`, `collection::vec`, `option::of`,
//! `ProptestConfig::with_cases` — over a seeded deterministic PRNG.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case reports its seed instead, and
//!   `PROPTEST_SEED=<n>` replays the exact same case sequence;
//! * value distributions are plain uniform.

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The real proptest `Strategy` also shrinks; this shim
/// only generates.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by `prop_oneof!` to unify arm types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// From a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy for any value of `T` (proptest's `any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// `proptest::collection` — sized collections of generated values.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — proptest's collection::vec for
    /// `Range<usize>` sizes (the only form the workspace uses).
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — optional values.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(strategy)` — `None` a quarter of the time, like proptest's
    /// default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property case (produced by `prop_assert*!`).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

/// Drives the cases of one property (used by the `proptest!` expansion).
pub struct Runner {
    cfg: ProptestConfig,
    name: &'static str,
    seed: u64,
}

impl Runner {
    /// New runner; the base seed comes from `PROPTEST_SEED` or a fixed
    /// default, mixed with the property name so distinct properties draw
    /// distinct sequences.
    pub fn new(cfg: ProptestConfig, name: &'static str) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5EED_0BAD_CAFE_F00D);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            cfg,
            name,
            seed: base ^ h,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cfg.cases
    }

    /// The RNG for case `i` (derived, so cases are independent).
    pub fn case_rng(&self, case: u32) -> TestRng {
        TestRng::new(self.seed ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Panics with replay instructions if the case failed.
    pub fn check(&self, case: u32, result: Result<(), TestCaseError>) {
        if let Err(e) = result {
            panic!(
                "property `{}` failed at case {case}: {}\n\
                 replay with: PROPTEST_SEED={} (base seed; case index {case})",
                self.name,
                e.message(),
                self.seed ^ {
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in self.name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                },
            );
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests (shim for the `proptest!` macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let runner = $crate::Runner::new($cfg, stringify!($name));
            for __case in 0..runner.cases() {
                let mut __rng = runner.case_rng(__case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                runner.check(__case, __result);
            }
        }
    )*};
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a property, failing the case (not the process) on error.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}",
                stringify!($a),
                stringify!($b),
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {left:?}",
                stringify!($a),
                stringify!($b),
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn mapped_tuples_work(v in (0u32..5, crate::any::<bool>()).prop_map(|(n, b)| (n * 2, b))) {
            prop_assert!(v.0 % 2 == 0);
            prop_assert!(v.0 < 10);
        }

        #[test]
        fn oneof_and_collections(ops in crate::collection::vec(
            prop_oneof![Just(1u8), Just(2u8), 5u8..9],
            1..20,
        )) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for op in ops {
                prop_assert!(op == 1 || op == 2 || (5..9).contains(&op));
            }
        }

        #[test]
        fn option_of_generates_both(xs in crate::collection::vec(crate::option::of(0u8..5), 40..41)) {
            prop_assert!(xs.iter().any(|x| x.is_none()));
            prop_assert!(xs.iter().any(|x| x.is_some()));
        }
    }

    #[test]
    fn deterministic_given_same_seed() {
        let r = crate::Runner::new(ProptestConfig::with_cases(4), "x");
        let a: Vec<u64> = (0..4).map(|i| r.case_rng(i).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|i| r.case_rng(i).next_u64()).collect();
        assert_eq!(a, b);
    }
}
