//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace routes `parking_lot` to this std-backed work-alike:
//! non-poisoning `Mutex`/`MutexGuard` and a `Condvar` whose `wait` takes
//! the guard by `&mut` (the parking_lot calling convention).

use std::sync;

/// Non-poisoning mutex (parking_lot-style `lock()` with no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `t` in a mutex.
    pub fn new(t: T) -> Self {
        Self(sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(t) => t,
            Err(e) => e.into_inner(),
        }
    }
}

/// Guard for [`Mutex`]. Holds an `Option` internally so [`Condvar::wait`]
/// can take the std guard by value and put it back.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Condition variable with the parking_lot `wait(&mut guard)` signature.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
